"""USEC and USEC-LS (Section 2 and Section 6.1).

**USEC** (unit-spherical emptiness checking): given red points and blue
points in R^d, decide whether some red-blue pair is within distance 1.
It carries an Omega(n^{4/3}) lower bound for d >= 5 and is believed equally
hard for d = 3, 4 — the root of all the paper's hardness results.

**USEC-LS** adds the promise that a plane perpendicular to dimension 1
separates the colors.  Lemma 1 shows USEC reduces to USEC-LS by divide and
conquer on dimension 1; :func:`usec_via_ls_oracle` implements that
reduction against any USEC-LS oracle, so the tests can validate the
construction end to end.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.geometry.points import sq_dist

Point = Tuple[float, ...]
LSOracle = Callable[[Sequence[Point], Sequence[Point]], bool]


@dataclass
class USECInstance:
    """A red/blue point set with unit distance threshold."""

    red: List[Point] = field(default_factory=list)
    blue: List[Point] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.red) + len(self.blue)

    def is_line_separated(self) -> bool:
        """Whether some plane on dimension 1 separates red from blue."""
        if not self.red or not self.blue:
            return True
        max_red = max(p[0] for p in self.red)
        min_blue = min(p[0] for p in self.blue)
        if max_red < min_blue:
            return True
        max_blue = max(p[0] for p in self.blue)
        min_red = min(p[0] for p in self.red)
        return max_blue < min_red


def usec_brute(red: Sequence[Point], blue: Sequence[Point]) -> bool:
    """Reference solver: any red-blue pair within distance 1?"""
    for r in red:
        for b in blue:
            if sq_dist(r, b) <= 1.0:
                return True
    return False


def usec_ls_brute(red: Sequence[Point], blue: Sequence[Point]) -> bool:
    """Reference USEC-LS solver (same predicate; the promise is unused)."""
    return usec_brute(red, blue)


def usec_via_ls_oracle(
    red: Sequence[Point], blue: Sequence[Point], oracle: LSOracle
) -> bool:
    """Solve USEC with a USEC-LS oracle — the Lemma 1 divide and conquer.

    Split all points by the median first coordinate; recurse on each half;
    then resolve the cross-half pairs with two line-separated oracle calls
    (left-red vs right-blue and left-blue vs right-red).
    """
    points = [(p, True) for p in red] + [(p, False) for p in blue]
    if len(red) == 0 or len(blue) == 0:
        return False
    if len(points) <= 2:
        return usec_brute(red, blue)
    points.sort(key=lambda item: item[0][0])
    mid = len(points) // 2
    left, right = points[:mid], points[mid:]
    left_red = [p for p, is_red in left if is_red]
    left_blue = [p for p, is_red in left if not is_red]
    right_red = [p for p, is_red in right if is_red]
    right_blue = [p for p, is_red in right if not is_red]
    if usec_via_ls_oracle(left_red, left_blue, oracle):
        return True
    if usec_via_ls_oracle(right_red, right_blue, oracle):
        return True
    if left_red and right_blue and oracle(left_red, right_blue):
        return True
    if left_blue and right_red and oracle(right_red, left_blue):
        return True
    return False


def random_usec_instance(
    n_red: int,
    n_blue: int,
    dim: int,
    extent: float = 10.0,
    seed: Optional[int] = None,
) -> USECInstance:
    """Uniform random USEC instance in ``[0, extent]^dim``."""
    rng = random.Random(seed)
    red = [tuple(rng.random() * extent for _ in range(dim)) for _ in range(n_red)]
    blue = [tuple(rng.random() * extent for _ in range(dim)) for _ in range(n_blue)]
    return USECInstance(red=red, blue=blue)


def random_usec_ls_instance(
    n_red: int,
    n_blue: int,
    dim: int,
    extent: float = 4.0,
    seed: Optional[int] = None,
) -> USECInstance:
    """Random line-separated instance: red left of 0, blue right of 0.

    The extent is small enough that "yes" instances occur frequently.
    """
    rng = random.Random(seed)
    red = [
        (-rng.random() * extent,) + tuple(rng.random() * extent for _ in range(dim - 1))
        for _ in range(n_red)
    ]
    blue = [
        (rng.random() * extent,) + tuple(rng.random() * extent for _ in range(dim - 1))
        for _ in range(n_blue)
    ]
    return USECInstance(red=red, blue=blue)
