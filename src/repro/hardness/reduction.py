"""The Lemma 2 reduction: USEC-LS via any fully-dynamic clusterer.

Given a fully-dynamic clustering algorithm `A` (supporting insertions,
deletions, and C-group-by queries), USEC-LS on ``n`` points is solved with
O(n) updates and queries:

1. insert every red point;
2. for each blue point ``p = (x1, ..., xd)``: insert ``p`` and a dummy
   ``p' = (x1 + 1, x2, ..., xd)``; query ``Q = {p, p'}``; if they share a
   cluster answer "yes"; otherwise delete both and continue.

The dummy is never a core point (``B(p', 1)`` holds only ``p`` and ``p'``
when MinPts = 3), so ``p`` and ``p'`` share a cluster iff ``p`` is core,
i.e. iff some red point lies within distance 1 of ``p``.

This is the construction behind Theorem 2: if updates and queries were
both o(n^{1/3}), USEC would be solved in o(n^{4/3}).  Here we run it
*forward* as a correctness check — the clusterer must give exactly the
brute-force USEC-LS answers.

One caveat the paper's proof glosses over: with a *double*-approximate
clusterer the dummy may fall in the don't-care band (``B(p', (1+rho))``
can hold a third point), so the reduction is guaranteed faithful for
rho-approximate semantics (our clusterers with ``rho = 0``) and remains a
sandwich-legal answer otherwise.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.workload.workload import Point

ClustererFactory = Callable[[int], object]


def solve_usec_ls_with_clusterer(
    red: Sequence[Point],
    blue: Sequence[Point],
    factory: ClustererFactory,
) -> bool:
    """Decide USEC-LS using a fully-dynamic clusterer built by ``factory``.

    ``factory(dim)`` must return an object with ``insert``, ``delete`` and
    ``same_cluster`` configured with ``eps = 1`` and ``MinPts = 3`` (see
    :func:`make_reduction_clusterer`).
    """
    if not red or not blue:
        return False
    dim = len(red[0])
    algo = factory(dim)
    for r in red:
        algo.insert(r)  # type: ignore[attr-defined]
    for p in blue:
        dummy = (p[0] + 1.0,) + tuple(p[1:])
        pid = algo.insert(p)  # type: ignore[attr-defined]
        did = algo.insert(dummy)  # type: ignore[attr-defined]
        same = algo.same_cluster(pid, did)  # type: ignore[attr-defined]
        if same:
            return True
        algo.delete(did)  # type: ignore[attr-defined]
        algo.delete(pid)  # type: ignore[attr-defined]
    return False


def make_reduction_clusterer(dim: int):
    """The clusterer configuration Lemma 2 requires (eps=1, MinPts=3)."""
    from repro.core.fullydynamic import FullyDynamicClusterer

    return FullyDynamicClusterer(eps=1.0, minpts=3, rho=0.0, dim=dim)
