"""The grid of Section 4.1: cells of side eps/sqrt(d) and eps-closeness.

Any two points in the same cell are within ``eps`` of each other.  Two cells
are *close* when the minimum distance between their boundaries is at most
the closeness threshold.  Following DESIGN.md we use a single threshold of
``(1 + rho) * eps`` everywhere (edge candidates and core-status rechecks);
with ``rho = 0`` this is the paper's plain eps-closeness.

Neighbor discovery supports two strategies (ablated in the benchmarks):

* ``"offsets"`` — precompute all integer offset vectors whose cells can be
  close (O((2 sqrt(d) + 3)^d) once, via numpy), then probe the registry;
* ``"scan"`` — iterate the registry of non-empty cells and test closeness
  directly (better when cells are few but d is large).

``"auto"`` picks per call based on the current registry size.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.kernels import cell_gap_sq_dists

Cell = Tuple[int, ...]

_STRATEGIES = ("auto", "offsets", "scan")


class Grid:
    """Geometry of the cell grid plus neighbor-offset machinery."""

    def __init__(
        self, eps: float, dim: int, rho: float = 0.0, strategy: str = "auto"
    ) -> None:
        if eps <= 0:
            raise ConfigError(f"eps must be positive, got {eps}")
        if dim < 1:
            raise ConfigError(f"dimension must be >= 1, got {dim}")
        if rho < 0:
            raise ConfigError(f"rho must be non-negative, got {rho}")
        if strategy not in _STRATEGIES:
            raise ConfigError(f"strategy must be one of {_STRATEGIES}, got {strategy!r}")
        self.eps = eps
        self.dim = dim
        self.rho = rho
        self.strategy = strategy
        self.side = eps / math.sqrt(dim)
        self.threshold = (1.0 + rho) * eps
        self._sq_threshold = self.threshold * self.threshold
        self._offsets: Optional[List[Cell]] = None

    def cell_of(self, point: Sequence[float]) -> Cell:
        """Cell coordinates covering ``point``."""
        side = self.side
        return tuple(int(math.floor(x / side)) for x in point)

    def cell_min_sq_dist(self, a: Cell, b: Cell) -> float:
        """Squared distance between the closest boundary points of two cells."""
        side = self.side
        total = 0.0
        for ai, bi in zip(a, b):
            gap = abs(ai - bi) - 1
            if gap > 0:
                g = gap * side
                total += g * g
        return total

    def cells_close(self, a: Cell, b: Cell) -> bool:
        """Whether two cells are within the closeness threshold."""
        return self.cell_min_sq_dist(a, b) <= self._sq_threshold

    @property
    def offsets(self) -> List[Cell]:
        """Non-zero offset vectors to all potentially-close cells."""
        if self._offsets is None:
            self._offsets = self._compute_offsets()
        return self._offsets

    def _compute_offsets(self) -> List[Cell]:
        reach = int(math.ceil(self.threshold / self.side)) + 1
        axis = np.arange(-reach, reach + 1)
        grids = np.meshgrid(*([axis] * self.dim), indexing="ij")
        deltas = np.stack([g.ravel() for g in grids], axis=1)
        mask = cell_gap_sq_dists(deltas, self.side) <= self._sq_threshold
        mask &= np.any(deltas != 0, axis=1)
        return [tuple(int(x) for x in row) for row in deltas[mask]]

    def neighbors_of(self, cell: Cell, registry: Dict[Cell, object]) -> List[Cell]:
        """Existing registry cells close to ``cell`` (excluding itself)."""
        strategy = self.strategy
        if strategy == "auto":
            # Probing the offset table costs one dict lookup per offset; the
            # scan costs one closeness test per registered cell.  Pick the
            # smaller side, but only pay for building the offset table when
            # it is small enough to ever win.
            offset_count = (2 * int(math.ceil(self.threshold / self.side)) + 3) ** self.dim
            strategy = "offsets" if offset_count <= max(4096, 4 * len(registry)) else "scan"
        if strategy == "offsets":
            found = []
            for delta in self.offsets:
                other = tuple(c + d for c, d in zip(cell, delta))
                if other in registry:
                    found.append(other)
            return found
        return [
            other
            for other in registry
            if other != cell and self.cells_close(cell, other)
        ]

    def cell_box(self, cell: Cell) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
        """The axis-parallel box covered by ``cell``."""
        side = self.side
        lo = tuple(c * side for c in cell)
        hi = tuple((c + 1) * side for c in cell)
        return lo, hi

    def bounding_cells(self, points: Iterable[Sequence[float]]) -> List[Cell]:
        """Distinct cells covering the given points (helper for tests)."""
        return sorted({self.cell_of(p) for p in points})
