"""Bulk-update surface shared by every clusterer (sequential fallbacks).

The numeric primitives that used to live here (cell bucketing, ball
counts, witness searches, box pruning) are now owned by the pluggable
kernel layer — see :mod:`repro.kernels` for the backend registry and
:mod:`repro.kernels.numpy_backend` for the reference implementations.
This module keeps the batch *API* glue: the sequential fallback mixins
that give every clusterer (baselines included) the ``insert_many`` /
``delete_many`` / ``cgroup_by_many`` surface the batched workload
runner drives, plus backward-compatible re-exports of the kernel
dispatchers under their historical names.

Equivalence contract (maintained by the clusterers' vectorized paths):
batch updates replay promotions (and demotions) in a deterministic
order — cells in lexicographic order, point ids ascending — and decide
core status from the *final* ball counts, which for monotone update
streams equals the state sequential processing reaches.  With
``rho = 0`` the output clustering is identical to the sequential path;
with ``rho > 0`` both are legal under the sandwich guarantee
(:mod:`repro.validation.sandwich`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

# Historical home of these primitives — re-exported so existing callers
# (and external code) keep working; they dispatch into the active
# backend like every other kernel call.
from repro.kernels import (  # noqa: F401
    any_within,
    as_point_array,
    ball_counts,
    box_sq_dists,
    bucket_by_cell,
)

Cell = Tuple[int, ...]

__all__ = [
    "Cell",
    "GumEdgeFragment",
    "MembershipFragments",
    "any_within",
    "as_point_array",
    "ball_counts",
    "box_sq_dists",
    "bucket_by_cell",
    "SequentialBulkMixin",
    "SequentialQueryMixin",
]


@dataclass
class MembershipFragments:
    """Per-core-cell membership fragments of one resolved query batch.

    The cell-level decomposition of a C-group-by answer, before any
    connected-component ids are applied: ``fragments[cell]`` lists the
    queried ids that belong to the cluster of core cell ``cell`` (a core
    point appears under its own cell; a non-core point under every close
    core cell holding a witness).  ``unmatched`` lists queried ids with
    no membership among the cells the resolver was allowed to decide
    (*noise*, unless a probe later finds a membership), and ``probes``
    lists ``(pid, cell)`` pairs the resolver deliberately left open
    because ``cell`` fell outside its trusted region — the cross-shard
    boundary merge resolves them against the cell owner's core points.

    With an unrestricted resolver (``trust=None``) ``probes`` is empty
    and the fragments are exactly the grouping a single engine reports,
    keyed by cell instead of CC id.
    """

    fragments: Dict[Cell, List[int]] = field(default_factory=dict)
    unmatched: List[int] = field(default_factory=list)
    probes: List[Tuple[int, Cell]] = field(default_factory=list)


@dataclass
class GumEdgeFragment:
    """One resolver's share of the grid-graph (GUM) edge set.

    ``core_cells`` are the trusted core cells (every global core cell is
    trusted by exactly one shard, so the union over shards is the global
    GUM vertex set).  ``edges`` hold the witnessed edges between trusted
    core-cell pairs; ``candidates`` are ``(trusted core cell, untrusted
    non-empty close cell)`` pairs whose edge decision needs the other
    side's authoritative core set; ``frontier`` maps each trusted core
    cell adjacent to untrusted territory to its core-point coordinates
    (sorted by id) — the raw material of the boundary merge.
    """

    core_cells: List[Cell] = field(default_factory=list)
    edges: List[Tuple[Cell, Cell]] = field(default_factory=list)
    candidates: List[Tuple[Cell, Cell]] = field(default_factory=list)
    frontier: Dict[Cell, np.ndarray] = field(default_factory=dict)


class SequentialBulkMixin:
    """Default bulk-update API: loop over the point-at-a-time methods.

    Gives every clusterer (baselines included) the ``insert_many`` /
    ``delete_many`` surface the batched workload runner drives, with the
    trivially-equivalent sequential semantics.
    """

    def insert_many(self, points: Iterable[Sequence[float]]) -> List[int]:
        """Insert a batch of points; returns their ids in batch order."""
        return [self.insert(p) for p in points]

    def delete_many(self, pids: Iterable[int]) -> None:
        """Delete a batch of points by id."""
        for pid in pids:
            self.delete(pid)


class SequentialQueryMixin:
    """Default batched-query API: delegate to the scalar ``cgroup_by``.

    The query-side twin of :class:`SequentialBulkMixin`: clusterers
    without a vectorized C-group-by (the baselines) still expose the
    ``cgroup_by_many`` surface the batched workload runner drives, with
    trivially-equivalent per-point semantics.
    """

    def cgroup_by_many(self, pids: Iterable[int]):
        """Resolve a batch of queried ids via the scalar query path."""
        return self.cgroup_by(pids)
