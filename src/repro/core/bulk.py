"""Vectorized building blocks for the bulk-update engine.

``insert_many`` / ``delete_many`` process a whole batch of updates in one
pass: the batch is bucketed into grid cells with a single vectorized
``floor(points / side)``, and ball counts / vicinity bumps are computed
with numpy distance matrices per cell-neighborhood instead of per-point
``sq_dist`` loops.  The helpers here are shared by
:class:`repro.core.semidynamic.SemiDynamicClusterer` and
:class:`repro.core.fullydynamic.FullyDynamicClusterer`; clusterers without
a vectorized path fall back to :class:`SequentialBulkMixin`, which keeps
every clusterer compatible with ``run_workload_batched``.

Equivalence contract: the batch paths replay promotions (and demotions)
in a deterministic order — cells in lexicographic order, point ids
ascending — and decide core status from the *final* ball counts, which
for monotone update streams (insert-only, or delete-only between
queries) equals the state sequential processing reaches.  With
``rho = 0`` the output clustering is identical to the sequential path;
with ``rho > 0`` both are legal under the sandwich guarantee
(:mod:`repro.validation.sandwich`).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

Cell = Tuple[int, ...]

#: Cap on the number of entries materialized per distance-matrix chunk.
_CHUNK_ENTRIES = 4_000_000


def as_point_array(points: Sequence[Sequence[float]], dim: int) -> np.ndarray:
    """Validate a batch of points and return it as an ``(n, dim)`` array."""
    try:
        arr = np.asarray(points, dtype=float)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"batch is not a rectangular array of floats: {exc}") from exc
    if arr.size == 0:
        return np.empty((0, dim), dtype=float)
    if arr.ndim != 2 or arr.shape[1] != dim:
        raise ValueError(
            f"batch has shape {arr.shape}, expected (n, {dim})"
        )
    if not np.isfinite(arr).all():
        raise ValueError("batch contains non-finite coordinates (nan/inf)")
    return arr


def bucket_by_cell(arr: np.ndarray, side: float) -> List[Tuple[Cell, np.ndarray]]:
    """Group batch indices by grid cell via vectorized flooring.

    Returns ``(cell, indices)`` pairs with cells in lexicographic order
    (the deterministic replay order) and indices ascending within each
    cell.  The flooring matches :meth:`repro.core.grid.Grid.cell_of`
    exactly, including on negative coordinates.

    Whenever the batch's cell bounding box fits in an int64 (always, in
    practice), cell coordinates are packed into one row-major scalar key
    so the grouping sort runs on a flat int64 array — several times
    faster than a row-wise ``unique``, with an identical ordering (the
    packing is monotone in the lexicographic cell order).
    """
    if len(arr) == 0:
        return []
    cells = np.floor(arr / side).astype(np.int64)
    lo = cells.min(axis=0)
    # Span and its product are computed in Python ints: an int64 subtraction
    # could wrap on astronomically spread coordinates and defeat the very
    # overflow guard below.
    span_py = [
        int(hi_c) - int(lo_c) + 1
        for lo_c, hi_c in zip(lo.tolist(), cells.max(axis=0).tolist())
    ]
    prod = 1
    for s in span_py:
        prod *= s
    if prod < 2**62:
        span = np.asarray(span_py, dtype=np.int64)
        strides = np.ones(len(span), dtype=np.int64)
        for i in range(len(span) - 2, -1, -1):
            strides[i] = strides[i + 1] * span[i + 1]
        keys = ((cells - lo) * strides).sum(axis=1)
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        boundaries = np.nonzero(np.diff(sorted_keys))[0] + 1
    else:  # astronomically spread coordinates: row-wise fallback
        unique_rows, inverse = np.unique(cells, axis=0, return_inverse=True)
        inverse = inverse.ravel()
        order = np.argsort(inverse, kind="stable")
        sorted_keys = inverse[order]
        boundaries = np.nonzero(np.diff(sorted_keys))[0] + 1
    splits = np.split(order, boundaries)
    return [
        (tuple(int(c) for c in cells[s[0]]), s)
        for s in splits
    ]


#: Relative slack of the fast BLAS distance identity.  The identity
#: ``|x - y|^2 = |x|^2 + |y|^2 - 2 x.y`` suffers cancellation of order
#: ``u * (|x|^2 + |y|^2)`` (u = 2^-52); pairs whose fast distance lands
#: within this slack of the threshold are re-verified with the exact
#: difference formula, so the decisions below are bit-identical to
#: ``sq_dist`` comparisons.
_BAND = 1e-9


def _fast_sq_dists(a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Approximate squared distances via BLAS plus the per-pair slack."""
    a2 = np.einsum("ij,ij->i", a, a)
    b2 = np.einsum("ij,ij->i", b, b)
    scale = a2[:, None] + b2[None, :]
    d2 = scale - 2.0 * (a @ b.T)
    return d2, _BAND * (scale + 1.0)


def _exact_within(point: np.ndarray, others: np.ndarray, sq_radius: float) -> np.ndarray:
    """Exact membership recheck of one point against candidate rows."""
    diff = point[None, :] - others
    return np.einsum("ij,ij->i", diff, diff) <= sq_radius


def ball_counts(a: np.ndarray, b: np.ndarray, sq_radius: float) -> np.ndarray:
    """For each row of ``a``, how many rows of ``b`` lie within the ball.

    Uses the BLAS identity for speed and re-verifies pairs inside the
    cancellation band exactly, so counts equal brute-force ``sq_dist``
    comparisons bit-for-bit.  Chunked so no intermediate matrix exceeds
    ``_CHUNK_ENTRIES`` entries.
    """
    n = len(a)
    counts = np.zeros(n, dtype=np.int64)
    if n == 0 or len(b) == 0:
        return counts
    chunk = max(1, _CHUNK_ENTRIES // len(b))
    for start in range(0, n, chunk):
        block = a[start : start + chunk]
        d2, tol = _fast_sq_dists(block, b)
        counts[start : start + chunk] = (d2 < sq_radius - tol).sum(axis=1)
        border = np.abs(d2 - sq_radius) <= tol
        for row in np.nonzero(border.any(axis=1))[0].tolist():
            candidates = b[border[row]]
            counts[start + row] += int(
                _exact_within(block[row], candidates, sq_radius).sum()
            )
    return counts


def box_sq_dists(pts: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Squared distance from each row to an axis-parallel box.

    Vectorized :func:`repro.geometry.points.box_min_sq_dist` — a lower
    bound on the distance to any point inside the box, used to prune
    rows that can never witness a ball predicate against that box.
    """
    d = np.maximum(np.maximum(lo - pts, pts - hi), 0.0)
    return np.einsum("ij,ij->i", d, d)


def _any_within_block(block: np.ndarray, b: np.ndarray, sq_radius: float) -> bool:
    d2, tol = _fast_sq_dists(block, b)
    if (d2 < sq_radius - tol).any():
        return True
    border = np.abs(d2 - sq_radius) <= tol
    for row in np.nonzero(border.any(axis=1))[0].tolist():
        if _exact_within(block[row], b[border[row]], sq_radius).any():
            return True
    return False


def any_within(a: np.ndarray, b: np.ndarray, sq_radius: float) -> bool:
    """Whether any pair ``(a[i], b[j])`` lies within the ball.

    Same exactness guarantee (and chunking) as :func:`ball_counts`.  A
    small probe block runs first: in dense regimes adjacent cells almost
    always hold a witness among the first few rows, so the common case
    never materializes the full matrix.
    """
    if len(a) == 0 or len(b) == 0:
        return False
    probe = min(32, len(a))
    if _any_within_block(a[:probe], b, sq_radius):
        return True
    chunk = max(1, _CHUNK_ENTRIES // len(b))
    for start in range(probe, len(a), chunk):
        if _any_within_block(a[start : start + chunk], b, sq_radius):
            return True
    return False


class SequentialBulkMixin:
    """Default bulk-update API: loop over the point-at-a-time methods.

    Gives every clusterer (baselines included) the ``insert_many`` /
    ``delete_many`` surface the batched workload runner drives, with the
    trivially-equivalent sequential semantics.
    """

    def insert_many(self, points: Iterable[Sequence[float]]) -> List[int]:
        """Insert a batch of points; returns their ids in batch order."""
        return [self.insert(p) for p in points]

    def delete_many(self, pids: Iterable[int]) -> None:
        """Delete a batch of points by id."""
        for pid in pids:
            self.delete(pid)


class SequentialQueryMixin:
    """Default batched-query API: delegate to the scalar ``cgroup_by``.

    The query-side twin of :class:`SequentialBulkMixin`: clusterers
    without a vectorized C-group-by (the baselines) still expose the
    ``cgroup_by_many`` surface the batched workload runner drives, with
    trivially-equivalent per-point semantics.
    """

    def cgroup_by_many(self, pids: Iterable[int]):
        """Resolve a batch of queried ids via the scalar query path."""
        return self.cgroup_by(pids)
