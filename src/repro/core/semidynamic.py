"""Semi-dynamic (insert-only) rho-approximate DBSCAN — Theorem 1.

Core-status structure: every non-core point ``p`` carries a vicinity count
``vincnt(p) = |B(p, eps)|``; it is promoted to core the moment the count
reaches ``MinPts`` (Section 5).  Dense cells short-circuit: once a cell
holds ``MinPts`` points, all of them are core (the cell's diameter is at
most ``eps``).

GUM: each promotion queries the close core cells without an edge; a proof
point within ``(1+rho) eps`` yields a grid-graph edge.  Since edges are
never removed, the CC structure is Tarjan's union-find.  A cheap
optimization with identical output: cells already in the same component are
skipped (an extra edge there cannot change any CC).

Exact DBSCAN is the ``rho = 0`` instantiation — in particular
``semi_exact_2d`` below is the paper's *2d-Semi-Exact* algorithm.

Queries (``cgroup_by`` / ``cgroup_by_many`` / ``clusters``) resolve
through the vectorized batch engine inherited from
:class:`repro.core.framework.GridClusterer`; the union-find ``_cc_id``
resolutions it memoizes per query are exactly the find operations of the
CC structure.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set

import numpy as np

from repro.connectivity.union_find import UnionFind
from repro.core.framework import GridClusterer
from repro.kernels import any_within, ball_counts, box_sq_dists, bucket_by_cell
from repro.core.grid import Cell
from repro.geometry.emptiness import EmptinessStructure
from repro.geometry.points import Point, sq_dist


class _SemiCell:
    """State of one non-empty cell under the semi-dynamic algorithm."""

    __slots__ = ("points", "core", "noncore", "emptiness", "neighbors")

    def __init__(self) -> None:
        self.points: Dict[int, Point] = {}
        self.core: Set[int] = set()
        self.noncore: Set[int] = set()
        self.emptiness: Optional[EmptinessStructure] = None
        self.neighbors: Set[Cell] = set()


class SemiDynamicClusterer(GridClusterer):
    """Insert-only rho-approximate DBSCAN with O~(1) amortized insertion."""

    def __init__(
        self,
        eps: float,
        minpts: int,
        rho: float = 0.0,
        dim: int = 2,
        strategy: str = "auto",
        fragment_cache: Optional[bool] = None,
    ) -> None:
        super().__init__(
            eps, minpts, rho, dim, strategy, fragment_cache=fragment_cache
        )
        self._uf = UnionFind()
        self._vincnt: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def insert(self, point: Sequence[float]) -> int:
        pid, pt = self._register_point(point)
        cell = self._grid.cell_of(pt)
        data = self._cells.get(cell)
        if data is None:
            data = _SemiCell()
            data.neighbors = self._discover_neighbors(cell)
            self._cells[cell] = data
        data.points[pid] = pt
        data.noncore.add(pid)

        if len(data.points) >= self.minpts:
            # Dense cell: every point in it is definitely core.
            for other_pid in list(data.noncore):
                if other_pid != pid:
                    self._promote(other_pid, cell, data)
            self._promote(pid, cell, data)
        else:
            count = self._exact_ball_count(pt, data)
            if count >= self.minpts:
                self._promote(pid, cell, data)
            else:
                self._vincnt[pid] = count

        # The new point raises the vicinity count of close non-core points.
        self._bump_vicinity(pid, pt, cell, data)
        # After linking: promotions reach one closeness step out at most,
        # so touching the insertion cell covers every changed cell.
        self._touch_cells((cell,))
        return pid

    def insert_many(self, points: Iterable[Sequence[float]]) -> List[int]:
        """Vectorized bulk insertion, equivalent to sequential ``insert``.

        The batch is bucketed into cells with one vectorized floor; ball
        counts and vicinity bumps come from numpy distance matrices per
        cell-neighborhood; promotions and GUM edges replay in
        deterministic order (cells lexicographic, ids ascending).  Core
        status is monotone under insertion, so deciding it from the final
        counts reaches the same state as point-at-a-time processing: with
        ``rho = 0`` the clustering is *identical* to the sequential path,
        with ``rho > 0`` both are legal under the sandwich guarantee.
        """
        base, arr, tuples = self._register_batch(points)
        if not tuples:
            return []
        minpts = self.minpts
        sq_eps = self._sq_eps
        vincnt = self._vincnt

        # Bucket into cells; create missing cells in lexicographic order
        # (discovery back-links keep every neighbor cache complete).
        buckets = bucket_by_cell(arr, self._grid.side)
        new_in_cell: Dict[Cell, np.ndarray] = {}
        for cell, idxs in buckets:
            data: Optional[_SemiCell] = self._cells.get(cell)  # type: ignore[assignment]
            if data is None:
                data = _SemiCell()
                data.neighbors = self._discover_neighbors(cell)
                self._cells[cell] = data
            for i in idxs.tolist():
                pid = base + i
                data.points[pid] = tuples[i]
                data.noncore.add(pid)
            new_in_cell[cell] = idxs

        coords_cache: Dict[Cell, np.ndarray] = {}
        promote_by_cell: Dict[Cell, List[int]] = {}

        # Core status of the new points: dense cells short-circuit (every
        # member is core); sparse cells get exact ball counts from one
        # distance matrix against the full cell-neighborhood.
        for cell, idxs in buckets:
            data = self._cells[cell]  # type: ignore[assignment]
            if len(data.points) >= minpts:
                promote_by_cell[cell] = sorted(data.noncore)
                continue
            counts = ball_counts(
                arr[idxs], self._neighborhood_coords(cell, coords_cache), sq_eps
            )
            chosen: List[int] = []
            for i, count in zip(idxs.tolist(), counts.tolist()):
                if count >= minpts:
                    chosen.append(base + i)
                else:
                    vincnt[base + i] = count
            if chosen:
                promote_by_cell[cell] = chosen

        # Vicinity bumps: pre-batch non-core points anywhere near the
        # batch gain the number of new points within eps, promoting those
        # that reach MinPts.  (Dense cells were fully promoted above.)
        bump_cells = set(new_in_cell)
        for cell in new_in_cell:
            bump_cells |= self._cells[cell].neighbors  # type: ignore[attr-defined]
        for cell in sorted(bump_cells):
            data = self._cells[cell]  # type: ignore[assignment]
            if len(data.points) >= minpts:
                continue
            old_noncore = sorted(pid for pid in data.noncore if pid < base)
            if not old_noncore:
                continue
            near_idxs = [
                new_in_cell[other]
                for other in (cell, *sorted(data.neighbors))
                if other in new_in_cell
            ]
            if not near_idxs:
                continue
            q_arr = np.array([data.points[pid] for pid in old_noncore])
            bumps = ball_counts(q_arr, arr[np.concatenate(near_idxs)], sq_eps)
            for pid, bump in zip(old_noncore, bumps.tolist()):
                if bump == 0:
                    continue
                vincnt[pid] += bump
                if vincnt[pid] >= minpts:
                    promote_by_cell.setdefault(cell, []).append(pid)

        # Replay promotions per cell: bulk-load the emptiness structures,
        # then add GUM edges with one vectorized witness check per close
        # core-cell pair (the exact eps test — a legal instantiation of
        # the approximate emptiness contract).
        for cell in sorted(promote_by_cell):
            data = self._cells[cell]  # type: ignore[assignment]
            pids = promote_by_cell[cell] = sorted(promote_by_cell[cell])
            if data.emptiness is None:
                data.emptiness = EmptinessStructure(self.dim, self.eps, self.rho)
            had_core = bool(data.core)
            for pid in pids:
                data.noncore.discard(pid)
                data.core.add(pid)
                vincnt.pop(pid, None)
            data.emptiness.insert_many([(pid, data.points[pid]) for pid in pids])
            if not had_core:
                self._uf.add(cell)
        core_cache: Dict[Cell, np.ndarray] = {}
        for cell in sorted(promote_by_cell):
            data = self._cells[cell]  # type: ignore[assignment]
            new_core = np.array(
                [data.points[pid] for pid in promote_by_cell[cell]]
            )
            cell_lo, cell_hi = (np.array(b) for b in self._grid.cell_box(cell))
            for other in sorted(data.neighbors):
                odata: _SemiCell = self._cells[other]  # type: ignore[assignment]
                if not odata.core:
                    continue
                if self._uf.connected(cell, other):
                    continue
                # Witness pairs must sit within eps of the opposite
                # cell's box; pruning by that bound leaves the outcome
                # unchanged but skips most cross-cluster near-misses.
                other_lo, other_hi = (
                    np.array(b) for b in self._grid.cell_box(other)
                )
                near_new = new_core[
                    box_sq_dists(new_core, other_lo, other_hi) <= sq_eps
                ]
                if not len(near_new):
                    continue
                other_core = core_cache.get(other)
                if other_core is None:
                    other_core = core_cache[other] = np.array(
                        [odata.points[pid] for pid in sorted(odata.core)]
                    )
                near_other = other_core[
                    box_sq_dists(other_core, cell_lo, cell_hi) <= sq_eps
                ]
                if len(near_other) and any_within(near_new, near_other, sq_eps):
                    self._uf.union(cell, other)
        self._touch_cells(new_in_cell)
        return list(range(base, base + len(tuples)))

    def delete(self, pid: int) -> None:
        raise NotImplementedError(
            "the semi-dynamic algorithm is insert-only; use "
            "FullyDynamicClusterer for workloads with deletions"
        )

    def vicinity_count(self, pid: int) -> Optional[int]:
        """Current vincnt of a non-core point (None once promoted)."""
        return self._vincnt.get(pid)

    def _bump_vicinity(self, pid: int, pt: Point, cell: Cell, data: _SemiCell) -> None:
        sq_eps = self._sq_eps
        vincnt = self._vincnt
        for other in (cell, *data.neighbors):
            odata = self._cells[other] if other != cell else data
            if not odata.noncore:
                continue
            for q in list(odata.noncore):
                if q == pid:
                    continue  # pid's own count came from the exact scan
                if sq_dist(odata.points[q], pt) <= sq_eps:
                    vincnt[q] += 1
                    if vincnt[q] >= self.minpts:
                        self._promote(q, other, odata)

    def _promote(self, pid: int, cell: Cell, data: _SemiCell) -> None:
        """Non-core -> core transition; feeds GUM (Section 5)."""
        data.noncore.discard(pid)
        data.core.add(pid)
        self._vincnt.pop(pid, None)
        if data.emptiness is None:
            data.emptiness = EmptinessStructure(self.dim, self.eps, self.rho)
        pt = data.points[pid]
        data.emptiness.insert(pid, pt)
        if len(data.core) == 1:
            self._uf.add(cell)
        for other in data.neighbors:
            odata: _SemiCell = self._cells[other]  # type: ignore[assignment]
            if not odata.core:
                continue
            if self._uf.connected(cell, other):
                continue
            assert odata.emptiness is not None
            if odata.emptiness.empty(pt) is not None:
                self._uf.union(cell, other)

    # ------------------------------------------------------------------
    # CC structure
    # ------------------------------------------------------------------

    def _cc_id(self, cell: Cell) -> Hashable:
        return self._uf.find(cell)


def semi_exact_2d(eps: float, minpts: int) -> SemiDynamicClusterer:
    """The paper's *2d-Semi-Exact* algorithm (exact DBSCAN, d = 2)."""
    return SemiDynamicClusterer(eps, minpts, rho=0.0, dim=2)


def semi_approx(
    eps: float, minpts: int, rho: float = 0.001, dim: int = 2
) -> SemiDynamicClusterer:
    """The paper's *Semi-Approx* algorithm (rho-approximate, any d)."""
    return SemiDynamicClusterer(eps, minpts, rho=rho, dim=dim)
