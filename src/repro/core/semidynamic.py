"""Semi-dynamic (insert-only) rho-approximate DBSCAN — Theorem 1.

Core-status structure: every non-core point ``p`` carries a vicinity count
``vincnt(p) = |B(p, eps)|``; it is promoted to core the moment the count
reaches ``MinPts`` (Section 5).  Dense cells short-circuit: once a cell
holds ``MinPts`` points, all of them are core (the cell's diameter is at
most ``eps``).

GUM: each promotion queries the close core cells without an edge; a proof
point within ``(1+rho) eps`` yields a grid-graph edge.  Since edges are
never removed, the CC structure is Tarjan's union-find.  A cheap
optimization with identical output: cells already in the same component are
skipped (an extra edge there cannot change any CC).

Exact DBSCAN is the ``rho = 0`` instantiation — in particular
``semi_exact_2d`` below is the paper's *2d-Semi-Exact* algorithm.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Sequence, Set

from repro.connectivity.union_find import UnionFind
from repro.core.framework import GridClusterer
from repro.core.grid import Cell
from repro.geometry.emptiness import EmptinessStructure
from repro.geometry.points import Point, sq_dist


class _SemiCell:
    """State of one non-empty cell under the semi-dynamic algorithm."""

    __slots__ = ("points", "core", "noncore", "emptiness", "neighbors")

    def __init__(self) -> None:
        self.points: Dict[int, Point] = {}
        self.core: Set[int] = set()
        self.noncore: Set[int] = set()
        self.emptiness: Optional[EmptinessStructure] = None
        self.neighbors: Set[Cell] = set()


class SemiDynamicClusterer(GridClusterer):
    """Insert-only rho-approximate DBSCAN with O~(1) amortized insertion."""

    def __init__(
        self,
        eps: float,
        minpts: int,
        rho: float = 0.0,
        dim: int = 2,
        strategy: str = "auto",
    ) -> None:
        super().__init__(eps, minpts, rho, dim, strategy)
        self._uf = UnionFind()
        self._vincnt: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def insert(self, point: Sequence[float]) -> int:
        pid, pt = self._register_point(point)
        cell = self._grid.cell_of(pt)
        data = self._cells.get(cell)
        if data is None:
            data = _SemiCell()
            data.neighbors = self._discover_neighbors(cell)
            self._cells[cell] = data
        data.points[pid] = pt
        data.noncore.add(pid)

        if len(data.points) >= self.minpts:
            # Dense cell: every point in it is definitely core.
            for other_pid in list(data.noncore):
                if other_pid != pid:
                    self._promote(other_pid, cell, data)
            self._promote(pid, cell, data)
        else:
            count = self._exact_ball_count(pt, data)
            if count >= self.minpts:
                self._promote(pid, cell, data)
            else:
                self._vincnt[pid] = count

        # The new point raises the vicinity count of close non-core points.
        self._bump_vicinity(pid, pt, cell, data)
        return pid

    def delete(self, pid: int) -> None:
        raise NotImplementedError(
            "the semi-dynamic algorithm is insert-only; use "
            "FullyDynamicClusterer for workloads with deletions"
        )

    def vicinity_count(self, pid: int) -> Optional[int]:
        """Current vincnt of a non-core point (None once promoted)."""
        return self._vincnt.get(pid)

    def _bump_vicinity(self, pid: int, pt: Point, cell: Cell, data: _SemiCell) -> None:
        sq_eps = self._sq_eps
        vincnt = self._vincnt
        for other in (cell, *data.neighbors):
            odata = self._cells[other] if other != cell else data
            if not odata.noncore:
                continue
            for q in list(odata.noncore):
                if q == pid:
                    continue  # pid's own count came from the exact scan
                if sq_dist(odata.points[q], pt) <= sq_eps:
                    vincnt[q] += 1
                    if vincnt[q] >= self.minpts:
                        self._promote(q, other, odata)

    def _promote(self, pid: int, cell: Cell, data: _SemiCell) -> None:
        """Non-core -> core transition; feeds GUM (Section 5)."""
        data.noncore.discard(pid)
        data.core.add(pid)
        self._vincnt.pop(pid, None)
        if data.emptiness is None:
            data.emptiness = EmptinessStructure(self.dim, self.eps, self.rho)
        pt = data.points[pid]
        data.emptiness.insert(pid, pt)
        if len(data.core) == 1:
            self._uf.add(cell)
        for other in data.neighbors:
            odata: _SemiCell = self._cells[other]  # type: ignore[assignment]
            if not odata.core:
                continue
            if self._uf.connected(cell, other):
                continue
            assert odata.emptiness is not None
            if odata.emptiness.empty(pt) is not None:
                self._uf.union(cell, other)

    # ------------------------------------------------------------------
    # CC structure
    # ------------------------------------------------------------------

    def _cc_id(self, cell: Cell) -> Hashable:
        return self._uf.find(cell)


def semi_exact_2d(eps: float, minpts: int) -> SemiDynamicClusterer:
    """The paper's *2d-Semi-Exact* algorithm (exact DBSCAN, d = 2)."""
    return SemiDynamicClusterer(eps, minpts, rho=0.0, dim=2)


def semi_approx(
    eps: float, minpts: int, rho: float = 0.001, dim: int = 2
) -> SemiDynamicClusterer:
    """The paper's *Semi-Approx* algorithm (rho-approximate, any d)."""
    return SemiDynamicClusterer(eps, minpts, rho=rho, dim=dim)
