"""The paper's primary contribution: dynamic density-based clusterers.

* :class:`SemiDynamicClusterer` — insert-only rho-approximate DBSCAN
  (Theorem 1); exact DBSCAN with ``rho=0``.
* :class:`FullyDynamicClusterer` — fully-dynamic rho-double-approximate
  DBSCAN (Theorem 4); exact DBSCAN with ``rho=0``.
* C-group-by queries (Section 4.2) via ``cgroup_by`` on either class.

Factory helpers mirror the paper's algorithm names: ``semi_exact_2d``,
``semi_approx``, ``full_exact_2d``, ``double_approx``.
"""

from repro.core.bulk import SequentialBulkMixin, SequentialQueryMixin
from repro.core.framework import (
    CGroupByResult,
    Clustering,
    GridClusterer,
    canonical_cgroup_result,
)
from repro.core.grid import Cell, Grid
from repro.core.abcp import ABCPInstance, RescanBCP, SuffixABCP, SIDE_A, SIDE_B
from repro.core.semidynamic import SemiDynamicClusterer, semi_approx, semi_exact_2d
from repro.core.fullydynamic import (
    FullyDynamicClusterer,
    double_approx,
    full_exact_2d,
)

__all__ = [
    "ABCPInstance",
    "CGroupByResult",
    "Cell",
    "Clustering",
    "FullyDynamicClusterer",
    "Grid",
    "GridClusterer",
    "RescanBCP",
    "SemiDynamicClusterer",
    "SequentialBulkMixin",
    "SequentialQueryMixin",
    "canonical_cgroup_result",
    "SIDE_A",
    "SuffixABCP",
    "SIDE_B",
    "double_approx",
    "full_exact_2d",
    "semi_approx",
    "semi_exact_2d",
]
