"""Approximate bichromatic close pair (aBCP) maintenance — Lemma 3.

One :class:`ABCPInstance` watches one pair of close core cells ``(A, B)``
and maintains a *witness pair* ``(a, b)`` with ``a`` a core point of ``A``
and ``b`` of ``B`` such that

* if non-empty, ``dist(a, b) <= (1 + rho) * eps``;
* it **must** be non-empty whenever some core pair is within ``eps``.

The grid-graph edge between ``A`` and ``B`` exists exactly while the witness
is non-empty (Section 7.2).

The implementation follows the paper's proof: a de-listing queue ``L`` holds
points whose emptiness query against the opposite cell is still owed.  Newly
inserted core points are appended to ``L``; each is de-listed (queried) at
most once per instance, giving O(1) amortized emptiness queries per update.

One refinement over the paper's prose: when the *initial* scan of the
smaller side stops early at the first witness, the remaining unscanned
points of that side are placed in ``L`` rather than dropped.  (Otherwise a
pair of initial points could hide forever: both sides present at
construction, the scan stops before reaching the pair's endpoint, and no
subsequent insertion ever re-queries it.  The suffix-pointer representation
in the paper's own remark has exactly this behaviour.)
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Sequence, Tuple

from repro.geometry.emptiness import EmptinessStructure

Coords = Callable[[int], Sequence[float]]

SIDE_A = 0
SIDE_B = 1


class ABCPInstance:
    """Witness-pair maintenance for one pair of close core cells."""

    __slots__ = ("_empt", "_coords", "witness", "_pending")

    def __init__(
        self,
        empt_a: EmptinessStructure,
        empt_b: EmptinessStructure,
        coords: Coords,
    ) -> None:
        self._empt = (empt_a, empt_b)
        self._coords = coords
        self.witness: Optional[Tuple[int, int]] = None
        self._pending: Deque[Tuple[int, int]] = deque()
        # Initial scan over the smaller side (Lemma 3's O(min(|A|, |B|))).
        side = SIDE_A if len(empt_a) <= len(empt_b) else SIDE_B
        ids = list(self._empt[side].ids())
        for i, pid in enumerate(ids):
            proof = self._empt[1 - side].empty(coords(pid))
            if proof is not None:
                self._set_witness(pid, side, proof)
                for rest in ids[i + 1 :]:
                    self._pending.append((rest, side))
                break

    @property
    def has_witness(self) -> bool:
        return self.witness is not None

    def _set_witness(self, pid: int, side: int, partner: int) -> None:
        self.witness = (pid, partner) if side == SIDE_A else (partner, pid)

    def _delist(self) -> None:
        """Drain owed queries until a witness appears or L empties."""
        pending = self._pending
        while pending:
            pid, side = pending.popleft()
            if pid not in self._empt[side]:
                continue  # lazily dropped (point deleted or demoted)
            proof = self._empt[1 - side].empty(self._coords(pid))
            if proof is not None:
                self._set_witness(pid, side, proof)
                return

    def insert(self, pid: int, side: int) -> None:
        """A core point appeared on ``side`` (already in its emptiness)."""
        self._pending.append((pid, side))
        if self.witness is None:
            self._delist()

    def delete(self, pid: int, side: int) -> None:
        """A core point left ``side`` (already removed from its emptiness)."""
        if self.witness is None:
            return
        if self.witness[side] != pid:
            return  # lazy removal from L via the alive check in _delist
        partner = self.witness[1 - side]
        proof = self._empt[side].empty(self._coords(partner))
        if proof is not None:
            self._set_witness(partner, 1 - side, proof)
            return
        self.witness = None
        self._delist()


class SuffixABCP:
    """The paper's "no materialization of L" representation (Lemma 3 remark).

    Instead of a per-instance queue, each cell keeps one append-only log
    of its core-point promotions (shared by *all* instances of that cell),
    and the instance stores just two integers: a cursor into each side's
    log.  Everything at or beyond a cursor is still owed a de-listing
    query; dead entries (demoted or deleted points) are skipped through a
    liveness check against the side's emptiness structure.  This is the
    O(1)-memory-per-instance variant the paper describes; semantics and
    amortized cost match :class:`ABCPInstance` exactly.
    """

    __slots__ = ("_empt", "_coords", "_logs", "_cursors", "witness")

    def __init__(
        self,
        empt_a: EmptinessStructure,
        empt_b: EmptinessStructure,
        coords: Coords,
        log_a: list,
        log_b: list,
    ) -> None:
        self._empt = (empt_a, empt_b)
        self._coords = coords
        self._logs = (log_a, log_b)
        self._cursors = [len(log_a), len(log_b)]
        self.witness: Optional[Tuple[int, int]] = None
        # Initial scan of the smaller side's *current* core points: walk
        # its log from the start; the cursor ends where the scan stopped,
        # so unscanned entries stay owed.
        side = SIDE_A if len(empt_a) <= len(empt_b) else SIDE_B
        self._cursors[side] = 0
        self._delist_side(side, initial=True)

    @property
    def has_witness(self) -> bool:
        return self.witness is not None

    def _set_witness(self, pid: int, side: int, partner: int) -> None:
        self.witness = (pid, partner) if side == SIDE_A else (partner, pid)

    def _delist_side(self, side: int, initial: bool = False) -> bool:
        """Advance one side's cursor until a witness or the log's end."""
        log = self._logs[side]
        empt = self._empt[side]
        other = self._empt[1 - side]
        cursor = self._cursors[side]
        while cursor < len(log):
            pid = log[cursor]
            cursor += 1
            if pid not in empt:
                continue  # demoted or deleted: lazily dropped
            proof = other.empty(self._coords(pid))
            if proof is not None:
                self._cursors[side] = cursor
                self._set_witness(pid, side, proof)
                return True
        self._cursors[side] = cursor
        return False

    def _delist(self) -> None:
        if not self._delist_side(SIDE_A):
            self._delist_side(SIDE_B)

    def insert(self, pid: int, side: int) -> None:
        """A core point appeared (its cell log already holds it)."""
        if self.witness is None:
            self._delist()

    def delete(self, pid: int, side: int) -> None:
        """A core point left (already removed from its emptiness)."""
        if self.witness is None or self.witness[side] != pid:
            return
        partner = self.witness[1 - side]
        proof = self._empt[side].empty(self._coords(partner))
        if proof is not None:
            self._set_witness(partner, 1 - side, proof)
            return
        self.witness = None
        self._delist()


class RescanBCP:
    """Ablation baseline for Lemma 3: recompute the witness from scratch.

    Implements the same interface and contract as :class:`ABCPInstance`,
    but every update that could invalidate the witness rescans the smaller
    side in full.  This is what a straightforward implementation without
    the de-listing queue would do; the ablation benchmark shows the
    amortized protocol winning as cells grow.
    """

    __slots__ = ("_empt", "_coords", "witness")

    def __init__(
        self,
        empt_a: EmptinessStructure,
        empt_b: EmptinessStructure,
        coords: Coords,
    ) -> None:
        self._empt = (empt_a, empt_b)
        self._coords = coords
        self.witness: Optional[Tuple[int, int]] = None
        self._rescan()

    @property
    def has_witness(self) -> bool:
        return self.witness is not None

    def _rescan(self) -> None:
        side = SIDE_A if len(self._empt[SIDE_A]) <= len(self._empt[SIDE_B]) else SIDE_B
        self.witness = None
        for pid in list(self._empt[side].ids()):
            proof = self._empt[1 - side].empty(self._coords(pid))
            if proof is not None:
                if side == SIDE_A:
                    self.witness = (pid, proof)
                else:
                    self.witness = (proof, pid)
                return

    def insert(self, pid: int, side: int) -> None:
        if self.witness is not None:
            return
        proof = self._empt[1 - side].empty(self._coords(pid))
        if proof is not None:
            self.witness = (pid, proof) if side == SIDE_A else (proof, pid)

    def delete(self, pid: int, side: int) -> None:
        if self.witness is not None and self.witness[side] == pid:
            self._rescan()
