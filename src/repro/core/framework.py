"""The grid-graph framework shared by all dynamic clusterers (Section 4).

:class:`GridClusterer` owns the point store, the grid, the non-empty-cell
registry with cached neighbor lists, and the C-group-by query algorithm of
Section 4.2.  Subclasses provide the update algorithms (core-status
structure + GUM + CC structure): :class:`repro.core.semidynamic.
SemiDynamicClusterer` for insert-only workloads (Theorem 1) and
:class:`repro.core.fullydynamic.FullyDynamicClusterer` for fully-dynamic
ones (Theorem 4).  Exact DBSCAN is obtained with ``rho = 0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import chain
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from repro.core.bulk import (
    GumEdgeFragment,
    MembershipFragments,
    SequentialBulkMixin,
)
from repro.core.fragments import (
    CellFragment,
    FragmentCache,
    FragmentCacheStats,
    resolve_fragment_cache,
)
from repro.errors import ConfigError, UnknownPointError
from repro.kernels import any_within, as_point_array, box_sq_dists, bucket_by_cell
from repro.core.grid import Cell, Grid
from repro.geometry.points import Point, sq_dist


@dataclass
class CGroupByResult:
    """Result of a C-group-by query: ``Q`` broken by cluster membership.

    ``groups[i]`` lists the queried point ids that fall in the i-th reported
    cluster; a non-core point may appear in several groups.  ``noise`` lists
    queried points that belong to no cluster.

    Results built by the clusterers are *canonical* (see
    :func:`canonical_cgroup_result`): members ascending within each group,
    groups ordered by smallest member, noise ascending — so equal
    clusterings compare equal as plain lists, independent of dict/set
    iteration order or of which query path produced them.
    """

    groups: List[List[int]] = field(default_factory=list)
    noise: List[int] = field(default_factory=list)

    def group_sets(self) -> List[Set[int]]:
        return [set(g) for g in self.groups]

    def memberships(self) -> Dict[int, int]:
        """Number of groups containing each queried point id."""
        counts: Dict[int, int] = {pid: 0 for pid in self.noise}
        for group in self.groups:
            for pid in group:
                counts[pid] = counts.get(pid, 0) + 1
        return counts


#: At or below this many queried ids ``cgroup_by_many`` routes through the
#: scalar path: the engine's fixed vectorization overhead (id dedup,
#: coordinate array build, cell bucketing) dominates small queries.  The
#: measured crossover on 2d seed-spreader data is ~180 ids; the cutoff sits
#: below it because the crossover shrinks with the core fraction and the
#: dimension (scalar probes get dearer, the fixed overhead does not), and
#: in the 128-180 band the two paths are within ~10% of each other.
_SEQUENTIAL_QUERY_CUTOFF = 128


def validated_query_pids(pids: Iterable[int], live: Dict[int, Point]) -> List[int]:
    """Materialize a query and check every pid up front.

    A dead pid must fail the whole query before any group is built — the
    caller never observes a partially-resolved result.  Shared by the
    grid framework and the baselines so the failure mode (and message)
    stays uniform.
    """
    pid_list = list(pids)
    missing = [pid for pid in pid_list if pid not in live]
    if missing:
        raise UnknownPointError(
            f"point id(s) {sorted(set(missing))} are not live; "
            f"the query was rejected before resolving any group"
        )
    return pid_list


def canonical_cgroup_result(
    groups: Iterable[Iterable[int]], noise: Iterable[int]
) -> CGroupByResult:
    """Deterministically-ordered :class:`CGroupByResult`.

    Members are deduplicated and sorted ascending within each group,
    groups are sorted by smallest member (full lexicographic order as the
    tie-break), empty groups are dropped, and noise is deduplicated and
    sorted ascending.
    """
    canon = sorted(sorted(set(g)) for g in groups if g)
    return CGroupByResult(groups=canon, noise=sorted(set(noise)))


@dataclass
class Clustering:
    """Full clustering of the current dataset (``Q = P``)."""

    clusters: List[Set[int]] = field(default_factory=list)
    noise: Set[int] = field(default_factory=set)

    @property
    def cluster_count(self) -> int:
        return len(self.clusters)


class GridClusterer(SequentialBulkMixin):
    """Common state and the shared C-group-by query algorithm.

    Subclasses must maintain, per non-empty cell, an object exposing
    ``points`` (dict id -> point), ``core`` (set of core ids),
    ``emptiness`` (an EmptinessStructure over the core ids, or None) and
    ``neighbors`` (set of close non-empty cells), and must implement
    ``_cc_id`` plus the update entry points.  The inherited sequential
    ``insert_many`` / ``delete_many`` are overridden with vectorized
    paths by both dynamic clusterers.

    Queries resolve through the vectorized batch engine
    (:meth:`cgroup_by_many`): ids bucketed by cell, core points split off
    with set operations, non-core points resolved per close core cell via
    batched emptiness calls.  ``cgroup_by`` and ``clusters()`` are thin
    wrappers over it; :meth:`cgroup_by_sequential` keeps the point-at-a-
    time reference.
    """

    def __init__(
        self,
        eps: float,
        minpts: int,
        rho: float = 0.0,
        dim: int = 2,
        strategy: str = "auto",
        fragment_cache: Optional[bool] = None,
    ) -> None:
        if minpts < 1:
            raise ConfigError(f"minpts must be >= 1, got {minpts}")
        self.eps = eps
        self.minpts = minpts
        self.rho = rho
        self.dim = dim
        self._grid = Grid(eps, dim, rho, strategy)
        self._sq_eps = eps * eps
        relaxed = eps * (1.0 + rho)
        self._sq_relaxed = relaxed * relaxed
        self._points: Dict[int, Point] = {}
        self._cells: Dict[Cell, object] = {}
        self._next_id = 0
        # Incremental fragment cache (None when disabled): memoizes
        # per-cell membership fragments and GUM edge decisions across
        # barriers; the update paths invalidate through _touch_cells.
        self._fragments: Optional[FragmentCache] = (
            FragmentCache() if resolve_fragment_cache(fragment_cache) else None
        )

    @property
    def fragment_cache_enabled(self) -> bool:
        """Whether barriers reuse cached fragments (the resolved knob)."""
        return self._fragments is not None

    def fragment_cache_stats(self) -> Optional[FragmentCacheStats]:
        """Cumulative cache counters, or ``None`` when disabled."""
        return None if self._fragments is None else self._fragments.stats()

    def _touch_cells(self, touched: Iterable[Cell]) -> None:
        """Invalidate cached fragments around mutated cells.

        ``touched`` is the set of cells whose point sets a mutation
        changed.  Core status can shift one closeness step out (a ball
        count reaches into neighbor cells), so GUM decisions and core
        coordinates die for ``ring1 = touched ∪ N(touched)``; membership
        fragments depend on their neighbors' core sets on top, so they
        die for ``ring2 = ring1 ∪ N(ring1)``.

        Contract with the update paths: insert paths call this *after*
        new cells are registered and neighbor-linked, delete paths
        *before* emptied cells are unlinked — either way the grid's
        neighbor links still cover the mutated neighborhood when the
        rings are derived here.
        """
        cache = self._fragments
        if cache is None or cache.is_empty():
            return
        cells = self._cells
        ring1 = set(touched)
        for cell in list(ring1):
            data = cells.get(cell)
            if data is not None:
                ring1 |= data.neighbors  # type: ignore[attr-defined]
        ring2 = set(ring1)
        for cell in ring1:
            data = cells.get(cell)
            if data is not None:
                ring2 |= data.neighbors  # type: ignore[attr-defined]
        cache.invalidate(ring2, ring1)

    # ------------------------------------------------------------------
    # Point store
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._points)

    def __contains__(self, pid: int) -> bool:
        return pid in self._points

    def point(self, pid: int) -> Point:
        """Coordinates of a stored point id."""
        return self._points[pid]

    def ids(self) -> Iterable[int]:
        """All live point ids."""
        return self._points.keys()

    @property
    def cell_count(self) -> int:
        return len(self._cells)

    def cell_of(self, pid: int) -> Cell:
        return self._grid.cell_of(self._points[pid])

    def _register_point(self, point: Sequence[float]) -> Tuple[int, Point]:
        if len(point) != self.dim:
            raise ConfigError(
                f"point has dimension {len(point)}, clusterer expects {self.dim}"
            )
        pid = self._next_id
        self._next_id += 1
        pt = tuple(float(x) for x in point)
        self._points[pid] = pt
        return pid, pt

    # ------------------------------------------------------------------
    # Update interface (implemented by subclasses)
    # ------------------------------------------------------------------

    def insert(self, point: Sequence[float]) -> int:
        """Insert a point; returns its id."""
        raise NotImplementedError

    def delete(self, pid: int) -> None:
        """Delete a point by id."""
        raise NotImplementedError

    def is_core(self, pid: int) -> bool:
        """Current core status of a live point (the core-status structure)."""
        data = self._cells[self._grid.cell_of(self._points[pid])]
        return pid in data.core  # type: ignore[attr-defined]

    def _cc_id(self, cell: Cell) -> Hashable:
        """CC id of a core cell (consistent between updates)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # C-group-by query (Section 4.2) — shared by all variants
    # ------------------------------------------------------------------

    def _cluster_ids_of(self, pid: int) -> List[Hashable]:
        if pid not in self._points:
            # Route the dead id through the uniform whole-query
            # validation so it raises UnknownPointError with the same
            # message as every other query path (not a bare KeyError).
            self._validated_query((pid,))
        point = self._points[pid]
        cell = self._grid.cell_of(point)
        data = self._cells[cell]
        if pid in data.core:  # type: ignore[attr-defined]
            return [self._cc_id(cell)]
        found: Set[Hashable] = set()
        # A core point in q's own cell is within eps automatically.
        if data.core:  # type: ignore[attr-defined]
            found.add(self._cc_id(cell))
        for other in data.neighbors:  # type: ignore[attr-defined]
            odata = self._cells[other]
            if not odata.core:  # type: ignore[attr-defined]
                continue
            if odata.emptiness.empty(point) is not None:  # type: ignore[attr-defined]
                found.add(self._cc_id(other))
        return list(found)

    def _validated_query(self, pids: Iterable[int]) -> List[int]:
        """Up-front whole-query pid validation (see the module helper)."""
        return validated_query_pids(pids, self._points)

    def cgroup_by(self, pids: Iterable[int]) -> CGroupByResult:
        """Group the queried ids by the clusters they belong to.

        Resolves through the vectorized batch engine
        (:meth:`cgroup_by_many`); :meth:`cgroup_by_sequential` keeps the
        point-at-a-time reference path.
        """
        return self.cgroup_by_many(pids)

    def cgroup_by_many(self, pids: Iterable[int]) -> CGroupByResult:
        """Vectorized C-group-by: resolve a whole batch of ids at once.

        The queried ids are bucketed by grid cell with one vectorized
        floor.  Core points split off with pure set operations (their
        cluster id is just ``_cc_id`` of their cell); all non-core points
        of a cell are then resolved against each close core cell with one
        batched emptiness call (``empty_many``) instead of per-point
        kd-tree probes.  CC-id resolutions are memoized per query, and a
        probe against a component the point already belongs to is skipped
        (the answer could not change the result — the same optimization
        the GUM update paths use).

        With ``rho = 0`` every primitive is exact and the result is
        identical to per-point resolution; with ``rho > 0`` each
        membership independently honours the approximate emptiness
        contract, so both paths are legal and may differ only inside the
        don't-care band.
        """
        pid_list = list(pids)
        if not pid_list:
            return CGroupByResult()
        if len(pid_list) <= _SEQUENTIAL_QUERY_CUTOFF:
            # Small queries lose to the engine's fixed vectorization
            # overhead; both paths produce the same canonical result.
            return self.cgroup_by_sequential(pid_list)
        # The canonical result is order- and multiplicity-free, so the
        # engine works on the deduplicated ascending id array.
        pid_arr = np.unique(np.asarray(pid_list, dtype=np.int64))
        points = self._points
        try:
            coords = [points[pid] for pid in pid_arr.tolist()]
        except KeyError:
            self._validated_query(pid_list)  # raises with the full dead set
            raise
        flat = np.fromiter(
            chain.from_iterable(coords), dtype=float, count=len(coords) * self.dim
        )
        return self._resolve_query(pid_arr, flat.reshape(-1, self.dim))

    def _resolve_query(
        self, pid_arr: np.ndarray, arr: np.ndarray
    ) -> CGroupByResult:
        """Resolve pre-validated ``(ids, coords)`` query arrays.

        ``pid_arr`` must hold distinct live ids.  Group membership is
        accumulated as id-array fragments per CC id and flattened once at
        the end, so fully-core cells (the common case on clustered data)
        contribute one slice each with no per-point Python work.  The
        flatten deduplicates: the cell-complete fragments of the cached
        engine grant a border point once per close core cell, so two
        cells of one component may both contribute it (the uncached
        engine's same-component skip keeps its fragments disjoint, and
        ``np.unique`` degenerates to the plain sort).
        """
        group_parts, group_pids, noise, _ = self._resolve_memberships(
            pid_arr, arr
        )
        groups = []
        for cid in group_parts.keys() | group_pids.keys():
            parts = group_parts.get(cid, [])
            pids_of_cid = group_pids.get(cid)
            if pids_of_cid:
                parts.append(np.asarray(pids_of_cid, dtype=np.int64))
            merged = parts[0] if len(parts) == 1 else np.concatenate(parts)
            groups.append(np.unique(merged).tolist())
        groups.sort()
        return CGroupByResult(groups=groups, noise=sorted(noise))

    def _resolve_memberships(
        self,
        pid_arr: np.ndarray,
        arr: np.ndarray,
        key: Optional[Callable[[Cell], Hashable]] = None,
        trust: Optional[Callable[[Cell], bool]] = None,
    ):
        """The engine behind every batched resolution, keyed by ``key(cell)``.

        With the defaults (``key = self._cc_id`` memoized, ``trust``
        unrestricted) this is exactly the :meth:`cgroup_by_many` engine.
        ``key`` maps the core cell granting a membership to the group it
        is accumulated under (identity yields per-cell fragments for the
        sharding boundary merge); ``trust`` restricts which cells this
        resolver may decide against — a close cell failing it is not
        probed, and every non-core query id of the bucket is emitted as a
        ``(pid, cell)`` probe for the caller to settle against the cell
        owner's authoritative core set.  Queried ids always live in
        trusted cells (the shard router routes each id to its owner).

        Returns ``(group_parts, group_pids, noise, probes)``: id-array
        fragments and scalar id lists per key, ids with no membership
        among trusted cells, and the open probes (empty when ``trust`` is
        None).

        With the fragment cache enabled the resolution routes through
        :meth:`_resolve_memberships_cached` instead — same outputs (at
        ``rho = 0`` bit-identical; above it sandwich-legal either way),
        but cell-complete buckets splice memoized
        :class:`repro.core.fragments.CellFragment` entries.
        """
        if self._fragments is not None:
            return self._resolve_memberships_cached(
                pid_arr, arr, key=key, trust=trust
            )
        group_parts: Dict[Hashable, List[np.ndarray]] = {}
        group_pids: Dict[Hashable, List[int]] = {}
        noise: List[int] = []
        probes: List[Tuple[int, Cell]] = []
        cc_cache: Dict[Cell, Hashable] = {}
        key_of = self._cc_id if key is None else key

        def cc(cell: Cell) -> Hashable:
            cid = cc_cache.get(cell)
            if cid is None:
                cid = cc_cache[cell] = key_of(cell)
            return cid

        for cell, idxs in bucket_by_cell(arr, self._grid.side):
            data = self._cells[cell]
            core_set = data.core  # type: ignore[attr-defined]
            cell_ids = pid_arr[idxs]
            if len(core_set) == len(data.points):  # type: ignore[attr-defined]
                # Fully-core cell: one array append covers every query.
                group_parts.setdefault(cc(cell), []).append(cell_ids)
                continue
            cell_pids = cell_ids.tolist()
            if not core_set:
                core_q: List[int] = []
                noncore_q = cell_pids
            else:
                core_q = [pid for pid in cell_pids if pid in core_set]
                noncore_q = [pid for pid in cell_pids if pid not in core_set]
            if core_q:
                group_pids.setdefault(cc(cell), []).extend(core_q)
            if not noncore_q:
                continue
            # A core point in the cell itself is within eps automatically.
            membership: Dict[int, Set[Hashable]] = (
                {pid: {cc(cell)} for pid in noncore_q}
                if core_set
                else {pid: set() for pid in noncore_q}
            )
            row_of = {pid: k for k, pid in enumerate(cell_pids)}
            cell_coords = arr[idxs]
            for other in sorted(data.neighbors):  # type: ignore[attr-defined]
                if trust is not None and not trust(other):
                    # Outside this resolver's authority: its local view
                    # of the cell's core set may be stale, so leave the
                    # decision open for every non-core id of the bucket
                    # (a point may belong to several clusters, so probes
                    # are emitted regardless of memberships found here).
                    probes.extend((pid, other) for pid in noncore_q)
                    continue
                odata = self._cells[other]
                if not odata.core:  # type: ignore[attr-defined]
                    continue
                ocid = cc(other)
                todo = [pid for pid in noncore_q if ocid not in membership[pid]]
                if not todo:
                    continue
                q_arr = (
                    cell_coords
                    if len(todo) == len(cell_pids)
                    else cell_coords[[row_of[pid] for pid in todo]]
                )
                proofs = odata.emptiness.empty_many(q_arr)  # type: ignore[attr-defined]
                for pid, proof in zip(todo, proofs):
                    if proof is not None:
                        membership[pid].add(ocid)
            for pid in noncore_q:
                cids = membership[pid]
                if not cids:
                    noise.append(pid)
                for cid in cids:
                    group_pids.setdefault(cid, []).append(pid)
        return group_parts, group_pids, noise, probes

    def _resolve_memberships_cached(
        self,
        pid_arr: np.ndarray,
        arr: np.ndarray,
        key: Optional[Callable[[Cell], Hashable]] = None,
        trust: Optional[Callable[[Cell], bool]] = None,
    ):
        """The fragment-cache twin of :meth:`_resolve_memberships`.

        Every bucket resolves to a granting-cell-keyed
        :class:`CellFragment` via :meth:`_resolve_cell_fragment`;
        *cell-complete* buckets (the query covers every live point of
        the cell — always true for ``Q = P`` and for the shard merge's
        owned-cell queries) are served from / stored into the cache,
        partial buckets recompute and bypass it.  The fragments are then
        spliced under ``key(granting cell)``, so the caller-visible
        outputs match the uncached engine's.
        """
        cache = self._fragments
        assert cache is not None
        cache.begin(trust)
        group_parts: Dict[Hashable, List[np.ndarray]] = {}
        noise: List[int] = []
        probes: List[Tuple[int, Cell]] = []
        cc_cache: Dict[Cell, Hashable] = {}
        key_of = self._cc_id if key is None else key
        for cell, idxs in bucket_by_cell(arr, self._grid.side):
            data = self._cells[cell]
            cell_ids = pid_arr[idxs]
            cacheable = len(cell_ids) == len(data.points)  # type: ignore[attr-defined]
            frag = cache.lookup_membership(cell) if cacheable else None
            if frag is None:
                frag = self._resolve_cell_fragment(
                    cell, data, cell_ids, arr[idxs], trust
                )
                if cacheable:
                    cache.store_membership(cell, frag)
            for gcell, member_ids in frag.members.items():
                cid = cc_cache.get(gcell)
                if cid is None:
                    cid = cc_cache[gcell] = key_of(gcell)
                group_parts.setdefault(cid, []).append(member_ids)
            noise.extend(frag.noise)
            probes.extend(frag.probes)
        return group_parts, {}, noise, probes

    def _resolve_cell_fragment(
        self,
        cell: Cell,
        data: object,
        cell_ids: np.ndarray,
        cell_coords: np.ndarray,
        trust: Optional[Callable[[Cell], bool]],
    ) -> CellFragment:
        """Resolve one cell bucket into a granting-cell-keyed fragment.

        The per-cell core of the batched query engine, factored out so
        the cached and uncached barriers run the same decisions.  Unlike
        the CC-keyed fast path of :meth:`_resolve_memberships`, every
        close trusted core cell is probed (no same-component skip):
        a fragment must be complete per *cell* so it stays valid while
        the global component structure drifts around it, and so the
        shard merge can apply its own global components to it.
        """
        core_set = data.core  # type: ignore[attr-defined]
        if len(core_set) == len(data.points):  # type: ignore[attr-defined]
            # Fully-core cell: every queried id is core, granted by its
            # own cell; nothing to probe.
            return CellFragment(members={cell: cell_ids})
        cell_pids = cell_ids.tolist()
        if not core_set:
            core_q: List[int] = []
            noncore_q = cell_pids
        else:
            core_q = [pid for pid in cell_pids if pid in core_set]
            noncore_q = [pid for pid in cell_pids if pid not in core_set]
        granted: Dict[Cell, List[int]] = {}
        if core_q:
            granted[cell] = core_q
        noise: List[int] = []
        probes: List[Tuple[int, Cell]] = []
        if noncore_q:
            # A core point in the cell itself is within eps automatically.
            membership: Dict[int, Set[Cell]] = (
                {pid: {cell} for pid in noncore_q}
                if core_set
                else {pid: set() for pid in noncore_q}
            )
            q_arr = (
                cell_coords
                if len(noncore_q) == len(cell_pids)
                else cell_coords[
                    [k for k, pid in enumerate(cell_pids) if pid not in core_set]
                ]
            )
            for other in sorted(data.neighbors):  # type: ignore[attr-defined]
                if trust is not None and not trust(other):
                    # Outside this resolver's authority (see
                    # _resolve_memberships): leave the decision open.
                    probes.extend((pid, other) for pid in noncore_q)
                    continue
                odata = self._cells[other]
                if not odata.core:  # type: ignore[attr-defined]
                    continue
                proofs = odata.emptiness.empty_many(q_arr)  # type: ignore[attr-defined]
                for pid, proof in zip(noncore_q, proofs):
                    if proof is not None:
                        membership[pid].add(other)
            for pid in noncore_q:
                granting = membership[pid]
                if not granting:
                    noise.append(pid)
                for gcell in granting:
                    granted.setdefault(gcell, []).append(pid)
        return CellFragment(
            members={
                gcell: np.asarray(pids, dtype=np.int64)
                for gcell, pids in granted.items()
            },
            noise=noise,
            probes=probes,
        )

    # ------------------------------------------------------------------
    # Shard-support surface: per-cell fragments for the boundary merge
    # ------------------------------------------------------------------

    def membership_fragments(
        self,
        pids: Iterable[int],
        trust: Optional[Callable[[Cell], bool]] = None,
    ) -> MembershipFragments:
        """Resolve queried ids into per-core-cell membership fragments.

        The cell-keyed decomposition of :meth:`cgroup_by_many` — what the
        shard router merges across engines: group fragments keyed by the
        core cell granting the membership instead of by CC id, so a
        boundary merge can apply its *global* connected components to
        them.  ``trust`` restricts which cells this engine may decide
        against (see :meth:`_resolve_memberships`); memberships against
        untrusted cells come back as open probes.  Dead ids raise
        :class:`repro.errors.UnknownPointError` before anything resolves,
        exactly like the query paths.
        """
        pid_list = list(pids)
        if not pid_list:
            return MembershipFragments()
        pid_arr = np.unique(np.asarray(pid_list, dtype=np.int64))
        points = self._points
        try:
            coords = [points[pid] for pid in pid_arr.tolist()]
        except KeyError:
            self._validated_query(pid_list)  # raises with the full dead set
            raise
        flat = np.fromiter(
            chain.from_iterable(coords), dtype=float, count=len(coords) * self.dim
        )
        group_parts, group_pids, noise, probes = self._resolve_memberships(
            pid_arr,
            flat.reshape(-1, self.dim),
            key=lambda cell: cell,
            trust=trust,
        )
        fragments: Dict[Cell, List[int]] = {}
        for cell in group_parts.keys() | group_pids.keys():
            parts = group_parts.get(cell, [])
            pids_of_cell = group_pids.get(cell)
            if pids_of_cell:
                parts.append(np.asarray(pids_of_cell, dtype=np.int64))
            merged = parts[0] if len(parts) == 1 else np.concatenate(parts)
            fragments[cell] = np.sort(merged).tolist()
        return MembershipFragments(
            fragments=fragments, unmatched=sorted(noise), probes=sorted(probes)
        )

    def gum_edge_fragment(
        self, trust: Optional[Callable[[Cell], bool]] = None
    ) -> GumEdgeFragment:
        """This engine's share of the GUM edge set, from exact witnesses.

        Recomputes, from the maintained per-cell core sets, every edge
        between *trusted* close core-cell pairs with one pruned exact
        witness test per pair — the same ``(1+rho) eps`` threshold the
        incremental structures maintain, so with ``rho = 0`` the edge set
        (and hence the component structure) is identical to theirs.
        Pairs reaching into untrusted territory are returned as
        candidates together with the trusted frontier's core coordinates;
        the shard router settles those against the owners' fragments.
        With ``trust=None`` the fragment simply covers the whole graph.

        With the fragment cache enabled, per-pair edge decisions and
        per-cell core-coordinate arrays are memoized across barriers: a
        decision depends only on the two cells' core point sets, so it
        stays valid until a mutation dirties either endpoint
        (:meth:`_touch_cells` drops exactly those).
        """
        sq_relaxed = self._sq_relaxed
        cells = self._cells
        cache = self._fragments
        if cache is not None:
            cache.begin(trust)
        trusted = (lambda _cell: True) if trust is None else trust
        core_cells: List[Cell] = sorted(
            cell
            for cell, data in cells.items()
            if data.core and trusted(cell)  # type: ignore[attr-defined]
        )
        core_cache: Dict[Cell, np.ndarray] = {}

        def core_coords(cell: Cell) -> np.ndarray:
            arr = (
                cache.get_core_coords(cell)
                if cache is not None
                else core_cache.get(cell)
            )
            if arr is None:
                data = cells[cell]
                arr = np.array(
                    [data.points[pid] for pid in sorted(data.core)]  # type: ignore[attr-defined]
                )
                if cache is not None:
                    cache.set_core_coords(cell, arr)
                else:
                    core_cache[cell] = arr
            return arr

        def edge_exists(cell: Cell, other: Cell, cell_lo, cell_hi) -> bool:
            # Witness pairs must sit within the threshold of the
            # opposite cell's box; pruning by that bound leaves the
            # outcome unchanged but skips most near-misses.
            mine = core_coords(cell)
            near_mine = mine[
                box_sq_dists(
                    mine, *(np.array(b) for b in self._grid.cell_box(other))
                )
                <= sq_relaxed
            ]
            if not len(near_mine):
                return False
            theirs = core_coords(other)
            near_theirs = theirs[
                box_sq_dists(theirs, cell_lo, cell_hi) <= sq_relaxed
            ]
            return bool(
                len(near_theirs)
                and any_within(near_mine, near_theirs, sq_relaxed)
            )

        edges: List[Tuple[Cell, Cell]] = []
        candidates: List[Tuple[Cell, Cell]] = []
        frontier: Dict[Cell, np.ndarray] = {}
        for cell in core_cells:
            data = cells[cell]
            cell_lo, cell_hi = (np.array(b) for b in self._grid.cell_box(cell))
            borders_untrusted = False
            for other in sorted(data.neighbors):  # type: ignore[attr-defined]
                if not trusted(other):
                    borders_untrusted = True
                    candidates.append((cell, other))
                    continue
                if other <= cell:
                    continue  # each trusted pair decided once
                odata = cells[other]
                if not odata.core:  # type: ignore[attr-defined]
                    continue
                if cache is not None:
                    decision = cache.lookup_gum((cell, other))
                    if decision is None:
                        decision = edge_exists(cell, other, cell_lo, cell_hi)
                        cache.store_gum((cell, other), decision)
                else:
                    decision = edge_exists(cell, other, cell_lo, cell_hi)
                if decision:
                    edges.append((cell, other))
            if borders_untrusted:
                frontier[cell] = core_coords(cell)
        return GumEdgeFragment(
            core_cells=core_cells,
            edges=edges,
            candidates=candidates,
            frontier=frontier,
        )

    def cgroup_by_sequential(self, pids: Iterable[int]) -> CGroupByResult:
        """Point-at-a-time C-group-by — the scalar reference path.

        Kept for the batch-vs-sequential equivalence harness and the
        query-throughput benchmarks; produces the same canonical ordering
        as :meth:`cgroup_by_many`.
        """
        pid_list = self._validated_query(pids)
        groups: Dict[Hashable, List[int]] = {}
        noise: List[int] = []
        for pid in pid_list:
            cids = self._cluster_ids_of(pid)
            if not cids:
                noise.append(pid)
            for cid in cids:
                groups.setdefault(cid, []).append(pid)
        return canonical_cgroup_result(groups.values(), noise)

    def clusters(self) -> Clustering:
        """Full clustering of the live dataset (a ``Q = P`` query)."""
        points = self._points
        if not points:
            return Clustering()
        if self._fragments is not None:
            return self._clusters_cached()
        # Q = P needs no per-id validation or dict lookups: the store's
        # keys and values already are the query arrays.
        flat = np.fromiter(
            chain.from_iterable(points.values()),
            dtype=float,
            count=len(points) * self.dim,
        )
        result = self._resolve_query(
            np.fromiter(points.keys(), dtype=np.int64, count=len(points)),
            flat.reshape(-1, self.dim),
        )
        return Clustering(
            clusters=result.group_sets(), noise=set(result.noise)
        )

    def _clusters_cached(self) -> Clustering:
        """The incremental ``Q = P`` barrier (fragment cache enabled).

        Iterates the cell registry directly — Q = P queries every live
        point of every cell, so there is nothing to flatten, bucket or
        validate, and every cell is cache-eligible.  Clean cells splice
        their memoized fragment; only cells a mutation dirtied since the
        last barrier recompute.  The cluster list keeps the canonical
        group order of :meth:`cgroup_by_many` (members ascending and
        deduplicated, groups lexicographic), so the result equals the
        uncached path's (exactly at ``rho = 0``).
        """
        cache = self._fragments
        assert cache is not None
        cache.begin(None)
        group_parts: Dict[Hashable, List[np.ndarray]] = {}
        noise: List[int] = []
        cc_cache: Dict[Cell, Hashable] = {}
        cc_of = self._cc_id
        for cell, data in self._cells.items():
            frag = cache.lookup_membership(cell)
            if frag is None:
                pts = data.points  # type: ignore[attr-defined]
                cell_ids = np.fromiter(
                    pts.keys(), dtype=np.int64, count=len(pts)
                )
                coords = np.array(list(pts.values()), dtype=float)
                frag = self._resolve_cell_fragment(
                    cell, data, cell_ids, coords, None
                )
                cache.store_membership(cell, frag)
            for gcell, member_ids in frag.members.items():
                cid = cc_cache.get(gcell)
                if cid is None:
                    cid = cc_cache[gcell] = cc_of(gcell)
                group_parts.setdefault(cid, []).append(member_ids)
            noise.extend(frag.noise)
        groups = []
        for parts in group_parts.values():
            merged = parts[0] if len(parts) == 1 else np.concatenate(parts)
            merged = np.sort(merged)
            if len(parts) > 1:
                # Fragments of one component may both grant a border
                # point; a sort + adjacent-difference mask dedups far
                # cheaper than np.unique's hash path at snapshot sizes.
                keep = np.empty(len(merged), dtype=bool)
                keep[0] = True
                np.not_equal(merged[1:], merged[:-1], out=keep[1:])
                merged = merged[keep]
            groups.append(merged.tolist())
        groups.sort()
        return Clustering(
            clusters=[set(g) for g in groups], noise=set(noise)
        )

    def same_cluster(self, pid_a: int, pid_b: int) -> bool:
        """Whether two live points share at least one cluster.

        Dead ids fail the whole query up front with
        :class:`repro.errors.UnknownPointError` (listing every dead id),
        exactly like the batched query paths.
        """
        self._validated_query((pid_a, pid_b))
        a = set(self._cluster_ids_of(pid_a))
        if not a:
            return False
        return bool(a.intersection(self._cluster_ids_of(pid_b)))

    # ------------------------------------------------------------------
    # Cell registry helpers
    # ------------------------------------------------------------------

    def _discover_neighbors(self, cell: Cell) -> Set[Cell]:
        """Find close non-empty cells and link the caches both ways."""
        neighbors = set(self._grid.neighbors_of(cell, self._cells))
        for other in neighbors:
            self._cells[other].neighbors.add(cell)  # type: ignore[attr-defined]
        return neighbors

    def _unlink_cell(self, cell: Cell) -> None:
        data = self._cells.pop(cell)
        for other in data.neighbors:  # type: ignore[attr-defined]
            self._cells[other].neighbors.discard(cell)  # type: ignore[attr-defined]

    def _register_batch(
        self, points: Iterable[Sequence[float]]
    ) -> Tuple[int, np.ndarray, List[Point]]:
        """Validate and store a whole batch of points at once.

        Returns ``(base, arr, tuples)``: the batch occupies the contiguous
        id range ``[base, base + len(arr))`` in batch order, exactly the
        ids sequential ``insert`` calls would have assigned.
        """
        arr = as_point_array(list(points), self.dim)
        base = self._next_id
        tuples: List[Point] = [tuple(row) for row in arr.tolist()]
        for pt in tuples:
            self._points[self._next_id] = pt
            self._next_id += 1
        return base, arr, tuples

    def _cell_coords(
        self, cell: Cell, cache: Dict[Cell, np.ndarray]
    ) -> np.ndarray:
        """All point coordinates of one cell as an array (memoized)."""
        arr = cache.get(cell)
        if arr is None:
            pts = self._cells[cell].points  # type: ignore[attr-defined]
            arr = (
                np.array(list(pts.values()), dtype=float)
                if pts
                else np.empty((0, self.dim))
            )
            cache[cell] = arr
        return arr

    def _neighborhood_coords(
        self, cell: Cell, cache: Dict[Cell, np.ndarray]
    ) -> np.ndarray:
        """Coordinates of every point in ``cell`` and its close cells."""
        data = self._cells[cell]
        parts = [self._cell_coords(cell, cache)]
        for other in sorted(data.neighbors):  # type: ignore[attr-defined]
            parts.append(self._cell_coords(other, cache))
        return np.concatenate(parts) if len(parts) > 1 else parts[0]

    def _exact_ball_count(self, point: Point, data: object) -> int:
        """Exact |B(point, eps)| over the cell of ``data`` and its neighbors."""
        sq_eps = self._sq_eps
        count = 0
        for qp in data.points.values():  # type: ignore[attr-defined]
            if sq_dist(qp, point) <= sq_eps:
                count += 1
        for other in data.neighbors:  # type: ignore[attr-defined]
            for qp in self._cells[other].points.values():  # type: ignore[attr-defined]
                if sq_dist(qp, point) <= sq_eps:
                    count += 1
        return count
