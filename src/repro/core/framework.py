"""The grid-graph framework shared by all dynamic clusterers (Section 4).

:class:`GridClusterer` owns the point store, the grid, the non-empty-cell
registry with cached neighbor lists, and the C-group-by query algorithm of
Section 4.2.  Subclasses provide the update algorithms (core-status
structure + GUM + CC structure): :class:`repro.core.semidynamic.
SemiDynamicClusterer` for insert-only workloads (Theorem 1) and
:class:`repro.core.fullydynamic.FullyDynamicClusterer` for fully-dynamic
ones (Theorem 4).  Exact DBSCAN is obtained with ``rho = 0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Sequence, Set, Tuple

import numpy as np

from repro.core.bulk import SequentialBulkMixin, as_point_array
from repro.core.grid import Cell, Grid
from repro.geometry.points import Point, sq_dist


@dataclass
class CGroupByResult:
    """Result of a C-group-by query: ``Q`` broken by cluster membership.

    ``groups[i]`` lists the queried point ids that fall in the i-th reported
    cluster; a non-core point may appear in several groups.  ``noise`` lists
    queried points that belong to no cluster.
    """

    groups: List[List[int]] = field(default_factory=list)
    noise: List[int] = field(default_factory=list)

    def group_sets(self) -> List[Set[int]]:
        return [set(g) for g in self.groups]

    def memberships(self) -> Dict[int, int]:
        """Number of groups containing each queried point id."""
        counts: Dict[int, int] = {pid: 0 for pid in self.noise}
        for group in self.groups:
            for pid in group:
                counts[pid] = counts.get(pid, 0) + 1
        return counts


@dataclass
class Clustering:
    """Full clustering of the current dataset (``Q = P``)."""

    clusters: List[Set[int]] = field(default_factory=list)
    noise: Set[int] = field(default_factory=set)

    @property
    def cluster_count(self) -> int:
        return len(self.clusters)


class GridClusterer(SequentialBulkMixin):
    """Common state and the shared C-group-by query algorithm.

    Subclasses must maintain, per non-empty cell, an object exposing
    ``points`` (dict id -> point), ``core`` (set of core ids),
    ``emptiness`` (an EmptinessStructure over the core ids, or None) and
    ``neighbors`` (set of close non-empty cells), and must implement
    ``_cc_id`` plus the update entry points.  The inherited sequential
    ``insert_many`` / ``delete_many`` are overridden with vectorized
    paths by both dynamic clusterers.
    """

    def __init__(
        self,
        eps: float,
        minpts: int,
        rho: float = 0.0,
        dim: int = 2,
        strategy: str = "auto",
    ) -> None:
        if minpts < 1:
            raise ValueError(f"minpts must be >= 1, got {minpts}")
        self.eps = eps
        self.minpts = minpts
        self.rho = rho
        self.dim = dim
        self._grid = Grid(eps, dim, rho, strategy)
        self._sq_eps = eps * eps
        relaxed = eps * (1.0 + rho)
        self._sq_relaxed = relaxed * relaxed
        self._points: Dict[int, Point] = {}
        self._cells: Dict[Cell, object] = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    # Point store
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._points)

    def __contains__(self, pid: int) -> bool:
        return pid in self._points

    def point(self, pid: int) -> Point:
        """Coordinates of a stored point id."""
        return self._points[pid]

    def ids(self) -> Iterable[int]:
        """All live point ids."""
        return self._points.keys()

    @property
    def cell_count(self) -> int:
        return len(self._cells)

    def cell_of(self, pid: int) -> Cell:
        return self._grid.cell_of(self._points[pid])

    def _register_point(self, point: Sequence[float]) -> Tuple[int, Point]:
        if len(point) != self.dim:
            raise ValueError(
                f"point has dimension {len(point)}, clusterer expects {self.dim}"
            )
        pid = self._next_id
        self._next_id += 1
        pt = tuple(float(x) for x in point)
        self._points[pid] = pt
        return pid, pt

    # ------------------------------------------------------------------
    # Update interface (implemented by subclasses)
    # ------------------------------------------------------------------

    def insert(self, point: Sequence[float]) -> int:
        """Insert a point; returns its id."""
        raise NotImplementedError

    def delete(self, pid: int) -> None:
        """Delete a point by id."""
        raise NotImplementedError

    def is_core(self, pid: int) -> bool:
        """Current core status of a live point (the core-status structure)."""
        data = self._cells[self._grid.cell_of(self._points[pid])]
        return pid in data.core  # type: ignore[attr-defined]

    def _cc_id(self, cell: Cell) -> Hashable:
        """CC id of a core cell (consistent between updates)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # C-group-by query (Section 4.2) — shared by all variants
    # ------------------------------------------------------------------

    def _cluster_ids_of(self, pid: int) -> List[Hashable]:
        point = self._points[pid]
        cell = self._grid.cell_of(point)
        data = self._cells[cell]
        if pid in data.core:  # type: ignore[attr-defined]
            return [self._cc_id(cell)]
        found: Set[Hashable] = set()
        # A core point in q's own cell is within eps automatically.
        if data.core:  # type: ignore[attr-defined]
            found.add(self._cc_id(cell))
        for other in data.neighbors:  # type: ignore[attr-defined]
            odata = self._cells[other]
            if not odata.core:  # type: ignore[attr-defined]
                continue
            if odata.emptiness.empty(point) is not None:  # type: ignore[attr-defined]
                found.add(self._cc_id(other))
        return list(found)

    def cgroup_by(self, pids: Iterable[int]) -> CGroupByResult:
        """Group the queried ids by the clusters they belong to."""
        groups: Dict[Hashable, List[int]] = {}
        noise: List[int] = []
        for pid in pids:
            if pid not in self._points:
                raise KeyError(f"point id {pid} is not live")
            cids = self._cluster_ids_of(pid)
            if not cids:
                noise.append(pid)
            for cid in cids:
                groups.setdefault(cid, []).append(pid)
        return CGroupByResult(groups=list(groups.values()), noise=noise)

    def clusters(self) -> Clustering:
        """Full clustering of the live dataset (a ``Q = P`` query)."""
        result = self.cgroup_by(list(self._points.keys()))
        return Clustering(
            clusters=result.group_sets(), noise=set(result.noise)
        )

    def same_cluster(self, pid_a: int, pid_b: int) -> bool:
        """Whether two live points share at least one cluster."""
        a = set(self._cluster_ids_of(pid_a))
        if not a:
            return False
        return bool(a.intersection(self._cluster_ids_of(pid_b)))

    # ------------------------------------------------------------------
    # Cell registry helpers
    # ------------------------------------------------------------------

    def _discover_neighbors(self, cell: Cell) -> Set[Cell]:
        """Find close non-empty cells and link the caches both ways."""
        neighbors = set(self._grid.neighbors_of(cell, self._cells))
        for other in neighbors:
            self._cells[other].neighbors.add(cell)  # type: ignore[attr-defined]
        return neighbors

    def _unlink_cell(self, cell: Cell) -> None:
        data = self._cells.pop(cell)
        for other in data.neighbors:  # type: ignore[attr-defined]
            self._cells[other].neighbors.discard(cell)  # type: ignore[attr-defined]

    def _register_batch(
        self, points: Iterable[Sequence[float]]
    ) -> Tuple[int, np.ndarray, List[Point]]:
        """Validate and store a whole batch of points at once.

        Returns ``(base, arr, tuples)``: the batch occupies the contiguous
        id range ``[base, base + len(arr))`` in batch order, exactly the
        ids sequential ``insert`` calls would have assigned.
        """
        arr = as_point_array(list(points), self.dim)
        base = self._next_id
        tuples: List[Point] = [tuple(row) for row in arr.tolist()]
        for pt in tuples:
            self._points[self._next_id] = pt
            self._next_id += 1
        return base, arr, tuples

    def _cell_coords(
        self, cell: Cell, cache: Dict[Cell, np.ndarray]
    ) -> np.ndarray:
        """All point coordinates of one cell as an array (memoized)."""
        arr = cache.get(cell)
        if arr is None:
            pts = self._cells[cell].points  # type: ignore[attr-defined]
            arr = (
                np.array(list(pts.values()), dtype=float)
                if pts
                else np.empty((0, self.dim))
            )
            cache[cell] = arr
        return arr

    def _neighborhood_coords(
        self, cell: Cell, cache: Dict[Cell, np.ndarray]
    ) -> np.ndarray:
        """Coordinates of every point in ``cell`` and its close cells."""
        data = self._cells[cell]
        parts = [self._cell_coords(cell, cache)]
        for other in sorted(data.neighbors):  # type: ignore[attr-defined]
            parts.append(self._cell_coords(other, cache))
        return np.concatenate(parts) if len(parts) > 1 else parts[0]

    def _exact_ball_count(self, point: Point, data: object) -> int:
        """Exact |B(point, eps)| over the cell of ``data`` and its neighbors."""
        sq_eps = self._sq_eps
        count = 0
        for qp in data.points.values():  # type: ignore[attr-defined]
            if sq_dist(qp, point) <= sq_eps:
                count += 1
        for other in data.neighbors:  # type: ignore[attr-defined]
            for qp in self._cells[other].points.values():  # type: ignore[attr-defined]
                if sq_dist(qp, point) <= sq_eps:
                    count += 1
        return count
