"""Fully-dynamic rho-double-approximate DBSCAN — Theorem 4.

Core status follows the *relaxed* definition of Section 6.2, decided by an
approximate range count (``repro.geometry.range_count``): a point is core
iff the count reaches ``MinPts``.  Dense cells short-circuit exactly as in
the semi-dynamic case.

Grid-graph edges are maintained by one aBCP instance (Lemma 3) per pair of
close core cells: the edge exists exactly while the instance holds a
witness pair.  The CC structure is pluggable — Holm–de Lichtenberg–Thorup
dynamic connectivity by default (the paper's choice), or the naive BFS
structure for ablation.

Exact DBSCAN is the ``rho = 0`` instantiation — ``full_exact_2d`` below is
the paper's *2d-Full-Exact*, and ``double_approx`` the paper's
*Double-Approx*.

Queries (``cgroup_by`` / ``cgroup_by_many`` / ``clusters``) resolve
through the vectorized batch engine inherited from
:class:`repro.core.framework.GridClusterer`; memoizing ``_cc_id`` per
query means each component-id lookup against the dynamic-connectivity
structure happens once per queried core cell, not once per point.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.connectivity.hdt import HDTConnectivity
from repro.connectivity.naive import NaiveConnectivity
from repro.core.abcp import ABCPInstance, RescanBCP, SuffixABCP, SIDE_A, SIDE_B
from repro.core.framework import GridClusterer
from repro.errors import ConfigError, UnknownPointError
from repro.kernels import ball_counts, bucket_by_cell
from repro.core.grid import Cell
from repro.geometry.emptiness import EmptinessStructure
from repro.geometry.points import Point
from repro.geometry.range_count import ApproximateRangeCounter

Connectivity = Union[HDTConnectivity, NaiveConnectivity]


class _FullCell:
    """State of one non-empty cell under the fully-dynamic algorithm."""

    __slots__ = (
        "points", "core", "noncore", "counter", "emptiness", "neighbors",
        "abcp", "core_log",
    )

    def __init__(self, dim: int, eps: float, rho: float) -> None:
        self.points: Dict[int, Point] = {}
        self.core: Set[int] = set()
        self.noncore: Set[int] = set()
        self.counter = ApproximateRangeCounter(dim, eps, rho)
        self.emptiness: Optional[EmptinessStructure] = None
        self.neighbors: Set[Cell] = set()
        # Close core cell -> (shared aBCP instance, this cell's side in it).
        self.abcp: Dict[Cell, Tuple[ABCPInstance, int]] = {}
        # Append-only promotion log (consumed by the SuffixABCP variant).
        self.core_log: list = []


class FullyDynamicClusterer(GridClusterer):
    """Fully-dynamic rho-double-approximate DBSCAN (O~(1) amortized updates)."""

    def __init__(
        self,
        eps: float,
        minpts: int,
        rho: float = 0.0,
        dim: int = 2,
        strategy: str = "auto",
        connectivity: str = "hdt",
        bcp: str = "abcp",
        fragment_cache: Optional[bool] = None,
    ) -> None:
        super().__init__(
            eps, minpts, rho, dim, strategy, fragment_cache=fragment_cache
        )
        if connectivity == "hdt":
            self._conn: Connectivity = HDTConnectivity()
        elif connectivity == "naive":
            self._conn = NaiveConnectivity()
        else:
            raise ConfigError(
                f"connectivity must be 'hdt' or 'naive', got {connectivity!r}"
            )
        if bcp == "abcp":
            self._make_bcp = lambda a, b: ABCPInstance(
                a.emptiness, b.emptiness, self._coords
            )
        elif bcp == "rescan":
            self._make_bcp = lambda a, b: RescanBCP(
                a.emptiness, b.emptiness, self._coords
            )
        elif bcp == "suffix":
            self._make_bcp = lambda a, b: SuffixABCP(
                a.emptiness, b.emptiness, self._coords, a.core_log, b.core_log
            )
        else:
            raise ConfigError(
                f"bcp must be 'abcp', 'rescan' or 'suffix', got {bcp!r}"
            )

    # ------------------------------------------------------------------
    # Core-status structure (Section 7.3)
    # ------------------------------------------------------------------

    def _approx_count(self, point: Point, data: _FullCell) -> int:
        """Approximate |B(point, eps)|, saturating at MinPts."""
        minpts = self.minpts
        count = data.counter.count(point, stop_at=minpts)
        if count >= minpts:
            return count
        for other in data.neighbors:
            odata: _FullCell = self._cells[other]  # type: ignore[assignment]
            count += odata.counter.count(point, stop_at=minpts - count)
            if count >= minpts:
                return count
        return count

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def insert(self, point: Sequence[float]) -> int:
        pid, pt = self._register_point(point)
        cell = self._grid.cell_of(pt)
        data: Optional[_FullCell] = self._cells.get(cell)  # type: ignore[assignment]
        if data is None:
            data = _FullCell(self.dim, self.eps, self.rho)
            data.neighbors = self._discover_neighbors(cell)
            self._cells[cell] = data
        data.points[pid] = pt
        data.counter.insert(pid, pt)
        data.noncore.add(pid)

        if len(data.points) >= self.minpts or self._approx_count(pt, data) >= self.minpts:
            self._promote(pid, cell, data)

        # The insertion can only create core points nearby; recheck them.
        for other in (cell, *data.neighbors):
            odata: _FullCell = self._cells[other]  # type: ignore[assignment]
            if not odata.noncore:
                continue
            if len(odata.points) >= self.minpts:
                for q in list(odata.noncore):
                    self._promote(q, other, odata)
            else:
                for q in list(odata.noncore):
                    if q == pid:
                        continue
                    if self._approx_count(odata.points[q], odata) >= self.minpts:
                        self._promote(q, other, odata)
        # After linking: promotions reach one closeness step out at most,
        # so touching the insertion cell covers every changed cell.
        self._touch_cells((cell,))
        return pid

    def insert_many(self, points: Iterable[Sequence[float]]) -> List[int]:
        """Vectorized bulk insertion, equivalent to sequential ``insert``.

        All batch points enter the cell registries and range counters
        first; core status is then decided in one pass over the affected
        cell-neighborhoods from exact numpy ball counts (a legal
        instantiation of the approximate range-count contract, and with
        ``rho = 0`` identical to it).  Promotions replay through
        ``_promote`` in deterministic order, which keeps the aBCP
        instances and the CC structure exactly as maintained by the
        sequential path.  Insertions only create core points, so one
        final pass reaches the sequential fixpoint.
        """
        base, arr, tuples = self._register_batch(points)
        if not tuples:
            return []
        minpts = self.minpts

        buckets = bucket_by_cell(arr, self._grid.side)
        for cell, idxs in buckets:
            data: Optional[_FullCell] = self._cells.get(cell)  # type: ignore[assignment]
            if data is None:
                data = _FullCell(self.dim, self.eps, self.rho)
                data.neighbors = self._discover_neighbors(cell)
                self._cells[cell] = data
            items = [(base + i, tuples[i]) for i in idxs.tolist()]
            for pid, pt in items:
                data.points[pid] = pt
                data.noncore.add(pid)
            data.counter.insert_many(items)

        # The batch can only create core points in the affected cells and
        # their close cells; recheck every non-core point there.
        recheck = {cell for cell, _ in buckets}
        for cell, _ in buckets:
            recheck |= self._cells[cell].neighbors  # type: ignore[attr-defined]
        coords_cache: Dict[Cell, np.ndarray] = {}
        for cell in sorted(recheck):
            data = self._cells[cell]  # type: ignore[assignment]
            if not data.noncore:
                continue
            if len(data.points) >= minpts:
                self._promote_many(sorted(data.noncore), cell, data)
                continue
            noncore = sorted(data.noncore)
            q_arr = np.array([data.points[pid] for pid in noncore])
            counts = ball_counts(
                q_arr, self._neighborhood_coords(cell, coords_cache), self._sq_eps
            )
            chosen = [
                pid
                for pid, count in zip(noncore, counts.tolist())
                if count >= minpts
            ]
            if chosen:
                self._promote_many(chosen, cell, data)
        self._touch_cells([cell for cell, _ in buckets])
        return list(range(base, base + len(tuples)))

    def delete_many(self, pids: Iterable[int]) -> None:
        """Vectorized bulk deletion, equivalent to sequential ``delete``.

        All points leave the registries and counters first (cores demote
        through ``_demote``, maintaining aBCP and connectivity); survivor
        core status is then rechecked in one pass over the affected
        cell-neighborhoods with exact numpy ball counts.  Deletions only
        destroy core points, so one final pass reaches the sequential
        fixpoint.
        """
        pid_list = list(pids)
        if not pid_list:
            return
        if len(set(pid_list)) != len(pid_list):
            raise ValueError("duplicate point ids in delete_many batch")
        dead = [pid for pid in pid_list if pid not in self._points]
        if dead:
            raise UnknownPointError(
                f"point id(s) {sorted(set(dead))} are not live; "
                f"the batch was rejected before deleting anything"
            )
        # Invalidate before any removal: emptied cells are unlinked below,
        # and the rings need the neighbor links still intact.
        self._touch_cells(
            {self._grid.cell_of(self._points[pid]) for pid in pid_list}
        )
        affected: Set[Cell] = set()
        for pid in pid_list:
            cell = self._grid.cell_of(self._points[pid])
            data: _FullCell = self._cells[cell]  # type: ignore[assignment]
            del data.points[pid]
            data.counter.delete(pid)
            if pid in data.core:
                self._demote(pid, cell, data)
            else:
                data.noncore.discard(pid)
            affected.add(cell)

        # The batch can only destroy core points in the affected cells
        # and their close cells; recheck every core point there.
        recheck = set(affected)
        for cell in affected:
            recheck |= self._cells[cell].neighbors  # type: ignore[attr-defined]
        coords_cache: Dict[Cell, np.ndarray] = {}
        minpts = self.minpts
        for cell in sorted(recheck):
            data = self._cells[cell]  # type: ignore[assignment]
            if len(data.points) >= minpts or not data.core:
                continue
            core = sorted(data.core)
            q_arr = np.array([data.points[pid] for pid in core])
            counts = ball_counts(
                q_arr, self._neighborhood_coords(cell, coords_cache), self._sq_eps
            )
            for pid, count in zip(core, counts.tolist()):
                if count < minpts:
                    self._demote(pid, cell, data)

        for cell in sorted(affected):
            if not self._cells[cell].points:  # type: ignore[attr-defined]
                self._unlink_cell(cell)
        for pid in pid_list:
            del self._points[pid]

    def delete(self, pid: int) -> None:
        if pid not in self._points:
            raise UnknownPointError(f"point id {pid} is not live")
        pt = self._points[pid]
        cell = self._grid.cell_of(pt)
        # Invalidate before any removal (the cell may be unlinked below).
        self._touch_cells((cell,))
        data: _FullCell = self._cells[cell]  # type: ignore[assignment]
        was_core = pid in data.core
        del data.points[pid]
        data.counter.delete(pid)
        if was_core:
            self._demote(pid, cell, data)
        else:
            data.noncore.discard(pid)

        # The deletion can only destroy core points nearby; recheck them.
        for other in (cell, *data.neighbors):
            odata: _FullCell = self._cells[other]  # type: ignore[assignment]
            if len(odata.points) >= self.minpts or not odata.core:
                continue
            for q in list(odata.core):
                if self._approx_count(odata.points[q], odata) < self.minpts:
                    self._demote(q, other, odata)

        if not data.points:
            self._unlink_cell(cell)
        del self._points[pid]

    # ------------------------------------------------------------------
    # GUM (Section 7.4)
    # ------------------------------------------------------------------

    def _coords(self, pid: int) -> Point:
        return self._points[pid]

    def _promote(self, pid: int, cell: Cell, data: _FullCell) -> None:
        """Non-core -> core transition."""
        data.noncore.discard(pid)
        data.core.add(pid)
        pt = data.points[pid]
        if data.emptiness is None:
            data.emptiness = EmptinessStructure(self.dim, self.eps, self.rho)
        data.emptiness.insert(pid, pt)
        data.core_log.append(pid)
        if len(data.core) == 1:
            # The cell just became a core cell: join the grid graph and
            # open an aBCP instance against every close core cell.
            self._conn.add_vertex(cell)
            for other in data.neighbors:
                odata: _FullCell = self._cells[other]  # type: ignore[assignment]
                if not odata.core:
                    continue
                assert odata.emptiness is not None
                instance = self._make_bcp(data, odata)
                data.abcp[other] = (instance, SIDE_A)
                odata.abcp[cell] = (instance, SIDE_B)
                if instance.has_witness:
                    self._conn.insert_edge(cell, other)
        else:
            for other, (instance, side) in data.abcp.items():
                had = instance.has_witness
                instance.insert(pid, side)
                if instance.has_witness and not had:
                    self._conn.insert_edge(cell, other)

    def _promote_many(self, pids: Sequence[int], cell: Cell, data: _FullCell) -> None:
        """Promote a whole batch of one cell's points at once.

        Equivalent to calling :meth:`_promote` on each pid in order, but
        the emptiness structure takes one buffered bulk insert instead of
        per-point tree descents, and when the cell just became a core
        cell its aBCP instances are opened once over the full batch (the
        instance constructor's initial scan subsumes the per-point
        ``insert`` notifications).
        """
        if data.emptiness is None:
            data.emptiness = EmptinessStructure(self.dim, self.eps, self.rho)
        was_core = bool(data.core)
        for pid in pids:
            data.noncore.discard(pid)
            data.core.add(pid)
        data.emptiness.insert_many([(pid, data.points[pid]) for pid in pids])
        data.core_log.extend(pids)
        if not was_core:
            self._conn.add_vertex(cell)
            for other in sorted(data.neighbors):
                odata: _FullCell = self._cells[other]  # type: ignore[assignment]
                if not odata.core:
                    continue
                assert odata.emptiness is not None
                instance = self._make_bcp(data, odata)
                data.abcp[other] = (instance, SIDE_A)
                odata.abcp[cell] = (instance, SIDE_B)
                if instance.has_witness:
                    self._conn.insert_edge(cell, other)
        else:
            for other, (instance, side) in data.abcp.items():
                had = instance.has_witness
                for pid in pids:
                    instance.insert(pid, side)
                if instance.has_witness and not had:
                    self._conn.insert_edge(cell, other)

    def _demote(self, pid: int, cell: Cell, data: _FullCell) -> None:
        """Core -> non-core transition (or core point leaving entirely)."""
        data.core.discard(pid)
        if pid in data.points:
            data.noncore.add(pid)
        assert data.emptiness is not None
        data.emptiness.delete(pid)
        if data.core:
            for other, (instance, side) in data.abcp.items():
                had = instance.has_witness
                instance.delete(pid, side)
                if had and not instance.has_witness:
                    self._conn.delete_edge(cell, other)
        else:
            # The cell stopped being a core cell: tear down its instances.
            for other, (instance, _side) in list(data.abcp.items()):
                if instance.has_witness:
                    self._conn.delete_edge(cell, other)
                odata: _FullCell = self._cells[other]  # type: ignore[assignment]
                odata.abcp.pop(cell, None)
            data.abcp.clear()
            self._conn.remove_vertex(cell)

    # ------------------------------------------------------------------
    # CC structure
    # ------------------------------------------------------------------

    def _cc_id(self, cell: Cell) -> Hashable:
        return self._conn.component_id(cell)

    @property
    def grid_edge_count(self) -> int:
        """Number of edges currently in the grid graph (for diagnostics)."""
        return self._conn.edge_count


def full_exact_2d(eps: float, minpts: int) -> FullyDynamicClusterer:
    """The paper's *2d-Full-Exact* algorithm (exact DBSCAN, d = 2)."""
    return FullyDynamicClusterer(eps, minpts, rho=0.0, dim=2)


def double_approx(
    eps: float, minpts: int, rho: float = 0.001, dim: int = 2, connectivity: str = "hdt"
) -> FullyDynamicClusterer:
    """The paper's *Double-Approx* algorithm (rho-double-approx, any d)."""
    return FullyDynamicClusterer(
        eps, minpts, rho=rho, dim=dim, connectivity=connectivity
    )
