"""Incremental fragment cache — cell-level invalidation (ROADMAP item).

The paper's thesis is "pay only for what changed"; this module applies
it one level up, to the *query* side.  A :class:`FragmentCache` memoizes
the two per-cell artifacts every barrier used to recompute from
scratch:

* **membership fragments** — one :class:`CellFragment` per queried grid
  cell: the resolved memberships of *all* of that cell's points, keyed
  by the core cell granting each membership (not by CC id — component
  ids drift globally on every union/split, while the granted-by-cell
  decomposition only changes when the local neighborhood does);
* **GUM edge decisions** — one boolean per close trusted core-cell pair
  ``(a, b)`` with ``a < b``: whether an exact witness pair within
  ``(1+rho) eps`` exists.  Per-cell core-coordinate arrays (the witness
  inputs, also the shard merge's frontier payload) are memoized along
  with them.

Invalidation is **eager and cell-local**.  When a mutation touches cell
set ``T``, core status can change only in ``ring1 = T ∪ N(T)`` (a ball
count reaches at most one closeness step); a cell's membership fragment
additionally depends on its neighbors' core sets, so fragments die for
``ring2 = ring1 ∪ N(ring1)``; GUM pair decisions and core coordinates
die for pairs/cells meeting ``ring1``.  The rings are derived by the
owner (:meth:`repro.core.framework.GridClusterer._touch_cells`) from
the grid's own neighbor links, which is why insert paths must touch
*after* linking new cells and delete paths *before* unlinking emptied
ones.  Eagerness matters: a lazy validity check is unsound once a
recompute clears the dirty mark while stale dependent entries survive.

Trust safety: every entry is implicitly keyed by the trust predicate it
was computed under (by object identity — the shard backends pass one
stable predicate per deployment, single engines pass ``None``).  A
lookup under a different predicate flushes the cache first, so a
fragment resolved with one shard's authority can never serve another.

Reuse legality: with ``rho = 0`` every cached decision is exact and
deterministic, so cache-on results are bit-identical to cache-off.
With ``rho > 0`` a cached fragment is a previously *legal* answer for a
neighborhood that has not changed since — replaying it is as legal as
recomputing (the sandwich guarantee constrains answers, not when they
were computed).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.core.grid import Cell
from repro.errors import ConfigError

__all__ = [
    "CellFragment",
    "FragmentCache",
    "FragmentCacheStats",
    "resolve_fragment_cache",
]

#: Environment fallback of the ``EngineConfig.fragment_cache`` knob.
FRAGMENT_CACHE_ENV = "REPRO_FRAGMENT_CACHE"

_TRUTHY = ("1", "true", "on", "yes")
_FALSY = ("0", "false", "off", "no")

#: Distinguishes "no trust predicate yet" from a ``None`` predicate
#: (which is itself a valid token: the unrestricted single engine).
_UNSET = object()


def resolve_fragment_cache(explicit: Optional[bool]) -> bool:
    """Resolve the fragment-cache knob: explicit > env > default (on).

    The default is **on**: the cache is invisible in results (exact at
    ``rho = 0``, sandwich-legal above), so every caller gets incremental
    barriers unless deliberately opted out — and the whole test suite
    exercises invalidation correctness.  ``REPRO_FRAGMENT_CACHE=0``
    turns it off process-wide (the CI matrix sweeps both).
    """
    if explicit is not None:
        return explicit
    env = os.environ.get(FRAGMENT_CACHE_ENV)
    if env:
        lowered = env.strip().lower()
        if lowered in _TRUTHY:
            return True
        if lowered in _FALSY:
            return False
        raise ConfigError(
            f"{FRAGMENT_CACHE_ENV}={env!r} is not a boolean; use one of "
            f"{'/'.join(_TRUTHY)} or {'/'.join(_FALSY)}"
        )
    return True


@dataclass(frozen=True)
class FragmentCacheStats:
    """Cumulative hit / miss / invalidation counters of one cache.

    ``hits`` and ``misses`` count cacheable per-cell lookups (a bucket
    whose query covers every live point of its cell — always true for
    ``Q = P`` snapshots and for the shard merge's owned-cell queries);
    partial-query buckets bypass the cache and count nothing.
    ``invalidations`` counts cached entries dropped by mutations (and
    trust-predicate switches), not mutation calls.
    """

    hits: int = 0
    misses: int = 0
    invalidations: int = 0


@dataclass
class CellFragment:
    """The resolved membership fragment of one fully-queried cell.

    ``members`` maps each granting core cell to the queried ids of
    *this* cell that belong to its cluster (own cell for core points
    and same-cell grants; close core cells for witnessed memberships).
    ``noise`` lists ids with no membership among trusted cells;
    ``probes`` the ``(pid, cell)`` decisions left open because the cell
    fell outside the resolver's trust.  Arrays are treated as immutable
    by every consumer (splicing always copies), so one fragment can be
    shared across queries.
    """

    members: Dict[Cell, np.ndarray] = field(default_factory=dict)
    noise: List[int] = field(default_factory=list)
    probes: List[Tuple[int, Cell]] = field(default_factory=list)


class FragmentCache:
    """Memoized per-cell fragments with eager cell-level invalidation."""

    def __init__(self) -> None:
        self._membership: Dict[Cell, CellFragment] = {}
        self._gum: Dict[Tuple[Cell, Cell], bool] = {}
        # Secondary index so invalidation never scans the pair store.
        self._gum_by_cell: Dict[Cell, Set[Tuple[Cell, Cell]]] = {}
        self._core_coords: Dict[Cell, np.ndarray] = {}
        self._trust_token: object = _UNSET
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    # Trust binding
    # ------------------------------------------------------------------

    def begin(self, trust: object) -> None:
        """Bind a query to its trust predicate (identity-compared).

        Entries computed under a different predicate are unusable —
        they may have decided against cells this predicate does not
        trust, or probed where it would decide — so a switch flushes
        everything.  Single engines always pass ``None`` and shard
        backends one stable predicate object, so in practice a flush
        only happens when one clusterer serves both roles.
        """
        if trust is not self._trust_token:
            if self._trust_token is not _UNSET:
                self._drop_all()
            self._trust_token = trust

    # ------------------------------------------------------------------
    # Membership fragments
    # ------------------------------------------------------------------

    def lookup_membership(self, cell: Cell) -> Optional[CellFragment]:
        """Cached fragment of a fully-queried cell (counts hit/miss)."""
        frag = self._membership.get(cell)
        if frag is None:
            self.misses += 1
        else:
            self.hits += 1
        return frag

    def store_membership(self, cell: Cell, fragment: CellFragment) -> None:
        self._membership[cell] = fragment

    # ------------------------------------------------------------------
    # GUM edge decisions + core coordinates
    # ------------------------------------------------------------------

    def lookup_gum(self, pair: Tuple[Cell, Cell]) -> Optional[bool]:
        """Cached edge decision of a sorted trusted core-cell pair."""
        decision = self._gum.get(pair)
        if decision is None:
            self.misses += 1
        else:
            self.hits += 1
        return decision

    def store_gum(self, pair: Tuple[Cell, Cell], decision: bool) -> None:
        self._gum[pair] = decision
        for endpoint in pair:
            self._gum_by_cell.setdefault(endpoint, set()).add(pair)

    def get_core_coords(self, cell: Cell) -> Optional[np.ndarray]:
        return self._core_coords.get(cell)

    def set_core_coords(self, cell: Cell, coords: np.ndarray) -> None:
        self._core_coords[cell] = coords

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------

    def is_empty(self) -> bool:
        return not (self._membership or self._gum or self._core_coords)

    def invalidate(
        self, member_cells: Iterable[Cell], structural_cells: Iterable[Cell]
    ) -> None:
        """Drop entries around mutated cells (see the module docstring).

        ``structural_cells`` is ``ring1`` — every cell whose core set
        (or existence) the mutation may have changed: GUM pairs meeting
        it and its core-coordinate arrays die.  ``member_cells`` is
        ``ring2 ⊇ ring1`` — membership fragments additionally depend on
        their neighbors' core sets, so they die one closeness step
        further out.
        """
        dropped = 0
        membership = self._membership
        for cell in member_cells:
            if membership.pop(cell, None) is not None:
                dropped += 1
        gum = self._gum
        gum_by_cell = self._gum_by_cell
        core_coords = self._core_coords
        for cell in structural_cells:
            core_coords.pop(cell, None)
            pairs = gum_by_cell.pop(cell, None)
            if not pairs:
                continue
            for pair in pairs:
                if gum.pop(pair, None) is not None:
                    dropped += 1
                other = pair[0] if pair[1] == cell else pair[1]
                other_pairs = gum_by_cell.get(other)
                if other_pairs is not None:
                    other_pairs.discard(pair)
                    if not other_pairs:
                        del gum_by_cell[other]
        self.invalidations += dropped

    def _drop_all(self) -> None:
        self.invalidations += len(self._membership) + len(self._gum)
        self._membership.clear()
        self._gum.clear()
        self._gum_by_cell.clear()
        self._core_coords.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> FragmentCacheStats:
        """Immutable snapshot of the cumulative counters."""
        return FragmentCacheStats(
            hits=self.hits,
            misses=self.misses,
            invalidations=self.invalidations,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FragmentCache(membership={len(self._membership)}, "
            f"gum={len(self._gum)}, hits={self.hits}, "
            f"misses={self.misses}, invalidations={self.invalidations})"
        )
