"""Internal-invariant checker for the fully-dynamic clusterer.

``check_invariants`` audits a live :class:`FullyDynamicClusterer` against
the structural invariants its correctness proof relies on:

1. the cell registry partitions the point store, with no empty cells;
2. neighbor caches are symmetric and match the grid's closeness predicate;
3. per-cell core/non-core sets partition the cell and agree with the
   emptiness structure and range counter contents;
4. an aBCP instance exists for every pair of close core cells, is shared
   by both, and its witness points are live core points of the right
   cells within the relaxed radius;
5. the CC structure's vertex set is exactly the core cells, and its edge
   set is exactly the witnessed instance pairs.

Useful in tests (called mid-churn) and as a debugging aid when extending
the library.  Returns a list of violation strings; empty means healthy.
"""

from __future__ import annotations

from typing import List

from repro.geometry.points import sq_dist


def check_invariants(algo) -> List[str]:
    """Audit a FullyDynamicClusterer's internal structures."""
    problems: List[str] = []
    grid = algo._grid
    cells = algo._cells

    # --- 1. registry partitions the point store --------------------------
    seen = 0
    for cell, data in cells.items():
        if not data.points:
            problems.append(f"cell {cell} is registered but empty")
        for pid, pt in data.points.items():
            seen += 1
            if algo._points.get(pid) != pt:
                problems.append(f"point {pid} in cell {cell} mismatches store")
            if grid.cell_of(pt) != cell:
                problems.append(f"point {pid} stored in wrong cell {cell}")
    if seen != len(algo._points):
        problems.append(
            f"cells hold {seen} points but the store has {len(algo._points)}"
        )

    # --- 2. symmetric, correct neighbor caches ---------------------------
    for cell, data in cells.items():
        for other in data.neighbors:
            if other not in cells:
                problems.append(f"cell {cell} caches dead neighbor {other}")
                continue
            if cell not in cells[other].neighbors:
                problems.append(f"neighbor cache asymmetry: {cell} -> {other}")
            if not grid.cells_close(cell, other):
                problems.append(f"cached neighbors {cell}, {other} are not close")
        expected = set(grid.neighbors_of(cell, cells))
        if expected != data.neighbors:
            problems.append(
                f"cell {cell} neighbor cache {sorted(data.neighbors)} != "
                f"expected {sorted(expected)}"
            )

    # --- 3. core bookkeeping ---------------------------------------------
    for cell, data in cells.items():
        if data.core | data.noncore != set(data.points):
            problems.append(f"cell {cell}: core+noncore != points")
        if data.core & data.noncore:
            problems.append(f"cell {cell}: core and noncore overlap")
        counter_ids = set(data.counter.ids())
        if counter_ids != set(data.points):
            problems.append(f"cell {cell}: range counter out of sync")
        empt_ids = set(data.emptiness.ids()) if data.emptiness else set()
        if empt_ids != data.core:
            problems.append(
                f"cell {cell}: emptiness holds {sorted(empt_ids)} but core is "
                f"{sorted(data.core)}"
            )

    # --- 4. aBCP instances -------------------------------------------------
    sq_relaxed = algo._sq_relaxed
    core_cells = {cell for cell, data in cells.items() if data.core}
    for cell in core_cells:
        data = cells[cell]
        for other in data.neighbors:
            if other in core_cells and other not in data.abcp:
                problems.append(f"missing aBCP instance for {cell} ~ {other}")
        for other, (instance, side) in data.abcp.items():
            if other not in core_cells:
                problems.append(f"aBCP instance {cell} ~ {other}: dead partner")
                continue
            back = cells[other].abcp.get(cell)
            if back is None or back[0] is not instance:
                problems.append(f"aBCP instance {cell} ~ {other}: not shared")
            if back is not None and back[1] == side:
                problems.append(f"aBCP instance {cell} ~ {other}: same side twice")
            if instance.witness is not None:
                a, b = instance.witness
                mine = a if side == 0 else b
                theirs = b if side == 0 else a
                if mine not in data.core:
                    problems.append(
                        f"aBCP witness {mine} is not a core point of {cell}"
                    )
                elif theirs not in cells[other].core:
                    problems.append(
                        f"aBCP witness {theirs} is not a core point of {other}"
                    )
                elif (
                    sq_dist(algo._points[a], algo._points[b])
                    > sq_relaxed * (1 + 1e-9)
                ):
                    problems.append(
                        f"aBCP witness pair ({a}, {b}) exceeds (1+rho)eps"
                    )

    # --- 5. CC structure mirrors the grid graph ---------------------------
    conn_vertices = set(algo._conn.vertices())
    if conn_vertices != core_cells:
        problems.append(
            f"CC vertices {len(conn_vertices)} != core cells {len(core_cells)}"
        )
    witnessed = 0
    for cell in core_cells:
        for other, (instance, side) in cells[cell].abcp.items():
            if side != 0:
                continue  # count each shared instance once
            if instance.witness is not None:
                witnessed += 1
                if not algo._conn.has_edge(cell, other):
                    problems.append(f"missing CC edge {cell} ~ {other}")
            elif algo._conn.has_edge(cell, other):
                problems.append(f"stale CC edge {cell} ~ {other}")
    if witnessed != algo._conn.edge_count:
        problems.append(
            f"CC structure has {algo._conn.edge_count} edges, expected {witnessed}"
        )
    return problems
