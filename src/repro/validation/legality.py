"""Fine-grained legality checks for approximate clustering outputs.

The sandwich guarantee constrains clusters as a whole; these checks verify
the *pointwise* rules of Sections 2 and 6.2 against an output:

* **core-status legality** — with ``relaxed_core=False`` (rho-approximate
  semantics) a point is core iff ``|B(p, eps)| >= MinPts`` exactly; with
  ``relaxed_core=True`` (double-approximate) a point flagged core must
  have ``|B(p, (1+rho) eps)| >= MinPts`` and one flagged non-core must
  have ``|B(p, eps)| < MinPts``.
* **core partition legality** — core points within ``eps`` must share a
  cluster; each cluster's core points must be connected in the
  ``(1+rho) eps`` graph over core points.
* **border legality** — a non-core point with a core point of cluster
  ``C`` within ``eps`` must be in ``C``; a member of ``C`` must have a
  core point of ``C`` within ``(1+rho) eps``.  Noise points must have no
  core point within ``eps``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Sequence, Set

from repro.geometry.points import sq_dist


def check_legality(
    coords: Dict[int, Sequence[float]],
    clusters: Iterable[Set[int]],
    noise: Set[int],
    core: Set[int],
    eps: float,
    minpts: int,
    rho: float,
    relaxed_core: bool,
) -> List[str]:
    """Return all legality violations (empty list means legal)."""
    violations: List[str] = []
    keys = list(coords)
    sq_eps = eps * eps
    relaxed = eps * (1.0 + rho)
    sq_relaxed = relaxed * relaxed
    cluster_list = [set(c) for c in clusters]

    # --- core-status legality -------------------------------------------
    for k in keys:
        p = coords[k]
        tight = sum(1 for j in keys if sq_dist(p, coords[j]) <= sq_eps)
        loose = sum(1 for j in keys if sq_dist(p, coords[j]) <= sq_relaxed)
        if k in core:
            required = loose if relaxed_core else tight
            if required < minpts:
                violations.append(
                    f"point {k} flagged core but has only {required} "
                    f"neighbors within the allowed radius (MinPts={minpts})"
                )
        else:
            if tight >= minpts:
                violations.append(
                    f"point {k} flagged non-core but |B(p, eps)| = {tight} "
                    f">= MinPts={minpts}"
                )

    # --- core partition legality ----------------------------------------
    core_list = sorted(core)
    cluster_of_core: Dict[int, int] = {}
    for idx, cluster in enumerate(cluster_list):
        for k in cluster:
            if k in core:
                if k in cluster_of_core:
                    violations.append(
                        f"core point {k} appears in clusters "
                        f"{cluster_of_core[k]} and {idx}"
                    )
                cluster_of_core[k] = idx
    for k in core_list:
        if k not in cluster_of_core:
            violations.append(f"core point {k} is in no cluster")
    for i, a in enumerate(core_list):
        for b in core_list[i + 1 :]:
            if sq_dist(coords[a], coords[b]) <= sq_eps:
                if cluster_of_core.get(a) != cluster_of_core.get(b):
                    violations.append(
                        f"core points {a} and {b} are within eps but in "
                        f"different clusters"
                    )
    # Each cluster's core set must be connected in the relaxed graph.
    for idx, cluster in enumerate(cluster_list):
        members = [k for k in cluster if k in core]
        if len(members) <= 1:
            if not members:
                violations.append(f"cluster {idx} contains no core point")
            continue
        seen = {members[0]}
        queue = deque([members[0]])
        member_set = set(members)
        while queue:
            x = queue.popleft()
            for y in member_set:
                if y not in seen and sq_dist(coords[x], coords[y]) <= sq_relaxed:
                    seen.add(y)
                    queue.append(y)
        if seen != member_set:
            violations.append(
                f"cluster {idx}: core points are not connected within "
                f"(1+rho)eps (reached {len(seen)} of {len(member_set)})"
            )

    # --- border and noise legality ---------------------------------------
    for k in keys:
        if k in core:
            continue
        p = coords[k]
        must_join = set()
        may_join = set()
        for c in core_list:
            home = cluster_of_core.get(c)
            if home is None:
                continue  # already reported as "core point in no cluster"
            d2 = sq_dist(p, coords[c])
            if d2 <= sq_eps:
                must_join.add(home)
            if d2 <= sq_relaxed:
                may_join.add(home)
        joined = {
            idx for idx, cluster in enumerate(cluster_list) if k in cluster
        }
        for idx in must_join - joined:
            violations.append(
                f"border point {k} has a core point of cluster {idx} within "
                f"eps but was not assigned to it"
            )
        for idx in joined - may_join:
            violations.append(
                f"point {k} was assigned to cluster {idx} but has no core "
                f"point of it within (1+rho)eps"
            )
        if k in noise and (joined or must_join):
            violations.append(f"point {k} flagged noise but belongs to a cluster")
        if not joined and k not in noise:
            violations.append(f"point {k} is in no cluster but not flagged noise")
    return violations
