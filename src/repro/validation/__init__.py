"""Validators for approximate clustering outputs.

* :func:`check_sandwich` — the Theorem 3 sandwich guarantee: every exact
  cluster at ``eps`` lies inside one output cluster, and every output
  cluster lies inside one exact cluster at ``(1+rho) eps``.
* :func:`check_legality` — per-point core-status legality plus
  connectivity legality of the output against the mandatory/forbidden
  edge rules.
"""

from repro.validation.sandwich import check_sandwich
from repro.validation.legality import check_legality
from repro.validation.invariants import check_invariants

__all__ = ["check_invariants", "check_legality", "check_sandwich"]
