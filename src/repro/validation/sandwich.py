"""The sandwich guarantee (Theorem 3).

Let ``C1`` be exact DBSCAN at ``(eps, MinPts)`` and ``C2`` exact DBSCAN at
``((1+rho) eps, MinPts)``.  A legal (double-)approximate output ``C`` must
satisfy:

(i)  every cluster of ``C1`` is contained in some cluster of ``C``;
(ii) every cluster of ``C`` is contained in some cluster of ``C2``.

The checker takes the output clusters as collections of point *keys*
together with a key -> coordinates mapping, recomputes ``C1``/``C2`` with
the brute-force oracle, and reports every violation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.baselines.static_dbscan import dbscan_grid


def check_sandwich(
    coords: Dict[int, Sequence[float]],
    clusters: Iterable[Set[int]],
    eps: float,
    minpts: int,
    rho: float,
) -> List[str]:
    """Return a list of sandwich violations (empty means the check passed)."""
    keys = sorted(coords)
    index_of = {k: i for i, k in enumerate(keys)}
    points = [tuple(coords[k]) for k in keys]
    output: List[Set[int]] = [{index_of[k] for k in cluster} for cluster in clusters]

    lower = dbscan_grid(points, eps, minpts)
    upper = dbscan_grid(points, eps * (1.0 + rho), minpts)

    violations: List[str] = []
    for i, c1 in enumerate(lower.clusters):
        if not any(c1 <= c for c in output):
            missing = [keys[j] for j in sorted(c1)][:10]
            violations.append(
                f"C1 cluster #{i} (size {len(c1)}, e.g. keys {missing}) is not "
                f"contained in any output cluster"
            )
    for i, c in enumerate(output):
        if not any(c <= c2 for c2 in upper.clusters):
            sample = [keys[j] for j in sorted(c)][:10]
            violations.append(
                f"output cluster #{i} (size {len(c)}, e.g. keys {sample}) is not "
                f"contained in any C2 cluster"
            )
    return violations
