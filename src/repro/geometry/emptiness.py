"""The rho-approximate epsilon-emptiness structure of Section 4.2.

One instance guards the *core points* of a single grid cell.  Its
``empty(q)`` query implements the paper's contract:

* returns a **proof point id** (a core point within ``(1+rho) * eps`` of
  ``q``) whenever the cell contains a core point within ``eps`` of ``q``;
* returns ``None`` whenever no core point lies within ``(1+rho) * eps``;
* may do either in between (the "don't care" band).

With ``rho = 0`` the structure is exact, which is how the framework captures
exact DBSCAN.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.geometry.kdtree import DynamicKDTree
from repro.geometry.points import Point


class EmptinessStructure:
    """Dynamic approximate emptiness queries over one cell's core points."""

    def __init__(self, dim: int, eps: float, rho: float) -> None:
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        if rho < 0:
            raise ValueError(f"rho must be non-negative, got {rho}")
        self.eps = eps
        self.rho = rho
        self._sq_eps = eps * eps
        relaxed = eps * (1.0 + rho)
        self._sq_relaxed = relaxed * relaxed
        self._tree = DynamicKDTree(dim)

    def __len__(self) -> int:
        return len(self._tree)

    def __contains__(self, pid: int) -> bool:
        return pid in self._tree

    def ids(self) -> Iterator[int]:
        return self._tree.ids()

    def insert(self, pid: int, point: Point) -> None:
        self._tree.insert(pid, point)

    def delete(self, pid: int) -> None:
        self._tree.delete(pid)

    def empty(self, q: Sequence[float]) -> Optional[int]:
        """Emptiness query: proof point id, or ``None`` (see module doc)."""
        return self._tree.find_within(q, self._sq_eps, self._sq_relaxed)
