"""The rho-approximate epsilon-emptiness structure of Section 4.2.

One instance guards the *core points* of a single grid cell.  Its
``empty(q)`` query implements the paper's contract:

* returns a **proof point id** (a core point within ``(1+rho) * eps`` of
  ``q``) whenever the cell contains a core point within ``eps`` of ``q``;
* returns ``None`` whenever no core point lies within ``(1+rho) * eps``;
* may do either in between (the "don't care" band).

With ``rho = 0`` the structure is exact, which is how the framework captures
exact DBSCAN.

Bulk insertions are buffered and folded into the kd-tree on the first
operation that needs the index (:class:`repro.geometry.kdtree.
DeferredKDTree`), so pure-ingest batches stay index-free; the sequential
``insert`` path is unchanged.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.geometry.kdtree import DeferredKDTree


class EmptinessStructure(DeferredKDTree):
    """Dynamic approximate emptiness queries over one cell's core points."""

    def __init__(self, dim: int, eps: float, rho: float) -> None:
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        if rho < 0:
            raise ValueError(f"rho must be non-negative, got {rho}")
        super().__init__(dim)
        self.eps = eps
        self.rho = rho
        self._sq_eps = eps * eps
        relaxed = eps * (1.0 + rho)
        self._sq_relaxed = relaxed * relaxed

    def empty(self, q: Sequence[float]) -> Optional[int]:
        """Emptiness query: proof point id, or ``None`` (see module doc)."""
        self._flush()
        return self._tree.find_within(q, self._sq_eps, self._sq_relaxed)
