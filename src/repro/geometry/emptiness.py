"""The rho-approximate epsilon-emptiness structure of Section 4.2.

One instance guards the *core points* of a single grid cell.  Its
``empty(q)`` query implements the paper's contract:

* returns a **proof point id** (a core point within ``(1+rho) * eps`` of
  ``q``) whenever the cell contains a core point within ``eps`` of ``q``;
* returns ``None`` whenever no core point lies within ``(1+rho) * eps``;
* may do either in between (the "don't care" band).

With ``rho = 0`` the structure is exact, which is how the framework captures
exact DBSCAN.

Bulk insertions are buffered and folded into the kd-tree on the first
operation that needs the index (:class:`repro.geometry.kdtree.
DeferredKDTree`), so pure-ingest batches stay index-free; the sequential
``insert`` path is unchanged.

``empty_many`` answers a whole batch of queries against the same cell in
one shot — the primitive behind the batched C-group-by engine.  Small
structures skip the kd-tree entirely: one exact distance matrix against
every stored point (tested at the relaxed radius, a legal instantiation
of the contract) is faster than per-node traversal bookkeeping, and it
leaves the write-behind buffer unindexed.  Large structures flush and run
the batched tree traversal, whose has-proof answers match the scalar
search exactly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro import kernels
from repro.errors import ConfigError, InvalidQueryError
from repro.geometry.kdtree import DeferredKDTree

#: At or below this many stored points ``empty_many`` answers with one
#: distance matrix instead of the kd-tree (grid cells are usually small,
#: and the matrix path never forces an index build).
_MATRIX_CUTOFF = 128


class EmptinessStructure(DeferredKDTree):
    """Dynamic approximate emptiness queries over one cell's core points."""

    def __init__(self, dim: int, eps: float, rho: float) -> None:
        if eps <= 0:
            raise ConfigError(f"eps must be positive, got {eps}")
        if rho < 0:
            raise ConfigError(f"rho must be non-negative, got {rho}")
        super().__init__(dim)
        self.eps = eps
        self.rho = rho
        self._sq_eps = eps * eps
        relaxed = eps * (1.0 + rho)
        self._sq_relaxed = relaxed * relaxed

    def empty(self, q: Sequence[float]) -> Optional[int]:
        """Emptiness query: proof point id, or ``None`` (see module doc)."""
        self._flush()
        return self._tree.find_within(q, self._sq_eps, self._sq_relaxed)

    def empty_many(self, qs: np.ndarray) -> List[Optional[int]]:
        """Batched emptiness: one proof id (or ``None``) per query row.

        Every answer honours the scalar ``empty`` contract; with
        ``rho = 0`` both radii coincide and every structure is exact, so
        the has-proof answers equal per-point ``empty`` calls exactly.

        The query batch is validated up front: ragged/object arrays and
        wrong trailing dimensions raise a clear ``ValueError`` here
        instead of a numpy broadcast error deep inside a kernel.  A
        float64 ``(n, dim)`` array is already proof of its own
        dtype/shape and passes straight through — the batched query
        engine calls this per close core cell with arrays it built
        itself, and re-scanning them each time would tax the hot path.
        """
        if (
            isinstance(qs, np.ndarray)
            and qs.dtype == np.float64
            and qs.ndim == 2
            and qs.shape[1] == self.dim
        ):
            pass  # hot path: dtype/shape are exactly what the kernels need
        else:
            try:
                qs = kernels.as_point_array(qs, self.dim)
            except ValueError as exc:
                raise InvalidQueryError(f"empty_many query {exc}") from None
        if len(qs) == 0:
            return []
        if len(self) <= _MATRIX_CUTOFF:
            ids, pts = self._items_snapshot()
            return kernels.find_within_many(qs, ids, pts, self._sq_relaxed)
        return self.find_within_many(qs, self._sq_eps, self._sq_relaxed)
