"""A dynamic R-tree over points (Guttman-style, quadratic split).

This is the range-query substrate for the IncDBSCAN baseline (Ester et al.
used an R*-tree).  It supports insertion, deletion by id, and ball range
queries.  Deletion locates the leaf through an id -> leaf map, removes the
entry, re-tightens bounding rectangles up the path, and collapses nodes that
become empty; underflowing nodes are tolerated rather than re-inserted
(tree quality matters far less here than the BFS cost IncDBSCAN pays, which
is what the paper's experiments highlight).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.geometry.points import Point

_MAX_ENTRIES = 16


class _RNode:
    __slots__ = ("lo", "hi", "parent", "children", "bucket")

    def __init__(self, dim: int, leaf: bool) -> None:
        self.lo: List[float] = [float("inf")] * dim
        self.hi: List[float] = [float("-inf")] * dim
        self.parent: Optional[_RNode] = None
        self.children: Optional[List[_RNode]] = None if leaf else []
        self.bucket: Optional[Dict[int, Point]] = {} if leaf else None

    def is_leaf(self) -> bool:
        return self.bucket is not None

    def min_sq_dist(self, q: Sequence[float]) -> float:
        total = 0.0
        for i, x in enumerate(q):
            if x < self.lo[i]:
                diff = self.lo[i] - x
            elif x > self.hi[i]:
                diff = x - self.hi[i]
            else:
                continue
            total += diff * diff
        return total

    def _enlargement(self, p: Point) -> float:
        """Volume increase if ``p`` joined this node (inf-safe for empties)."""
        old = 1.0
        new = 1.0
        for i, x in enumerate(p):
            side = self.hi[i] - self.lo[i]
            if side < 0:
                return float("inf")
            old *= side
            new *= max(self.hi[i], x) - min(self.lo[i], x)
        return new - old

    def _expand_point(self, p: Point) -> None:
        for i, x in enumerate(p):
            if x < self.lo[i]:
                self.lo[i] = x
            if x > self.hi[i]:
                self.hi[i] = x

    def _expand_node(self, other: "_RNode") -> None:
        for i in range(len(self.lo)):
            if other.lo[i] < self.lo[i]:
                self.lo[i] = other.lo[i]
            if other.hi[i] > self.hi[i]:
                self.hi[i] = other.hi[i]

    def recompute_mbr(self) -> None:
        dim = len(self.lo)
        self.lo = [float("inf")] * dim
        self.hi = [float("-inf")] * dim
        if self.is_leaf():
            assert self.bucket is not None
            for p in self.bucket.values():
                self._expand_point(p)
        else:
            assert self.children is not None
            for child in self.children:
                self._expand_node(child)


class RTree:
    """Dynamic point R-tree supporting ball range queries."""

    def __init__(self, dim: int) -> None:
        if dim < 1:
            raise ValueError(f"dimension must be >= 1, got {dim}")
        self.dim = dim
        self._root = _RNode(dim, leaf=True)
        self._leaf_of: Dict[int, _RNode] = {}
        self._points: Dict[int, Point] = {}

    def __len__(self) -> int:
        return len(self._points)

    def __contains__(self, pid: int) -> bool:
        return pid in self._points

    def point(self, pid: int) -> Point:
        return self._points[pid]

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def insert(self, pid: int, point: Point) -> None:
        if pid in self._points:
            raise KeyError(f"point id {pid} already present")
        self._points[pid] = point
        node = self._root
        while not node.is_leaf():
            assert node.children is not None
            node._expand_point(point)
            node = min(node.children, key=lambda c: c._enlargement(point))
        node._expand_point(point)
        assert node.bucket is not None
        node.bucket[pid] = point
        self._leaf_of[pid] = node
        if len(node.bucket) > _MAX_ENTRIES:
            self._split(node)

    def delete(self, pid: int) -> None:
        leaf = self._leaf_of.pop(pid)
        assert leaf.bucket is not None
        del leaf.bucket[pid]
        del self._points[pid]
        node: Optional[_RNode] = leaf
        while node is not None:
            parent = node.parent
            if parent is not None and not node.is_leaf() and not node.children:
                assert parent.children is not None
                parent.children.remove(node)
            elif parent is not None and node.is_leaf() and not node.bucket:
                assert parent.children is not None
                parent.children.remove(node)
            else:
                node.recompute_mbr()
            node = parent
        # Collapse a root with a single internal child.
        while (
            not self._root.is_leaf()
            and self._root.children is not None
            and len(self._root.children) == 1
        ):
            self._root = self._root.children[0]
            self._root.parent = None

    def _split(self, node: _RNode) -> None:
        """Quadratic split of an overflowing node (leaf or internal)."""
        if node.is_leaf():
            assert node.bucket is not None
            entries: List[Tuple[object, Point]] = [
                (pid, p) for pid, p in node.bucket.items()
            ]
            reps = [p for _, p in entries]
        else:
            assert node.children is not None
            entries = [
                (child, tuple((child.lo[i] + child.hi[i]) / 2 for i in range(self.dim)))
                for child in node.children
            ]
            reps = [rep for _, rep in entries]

        # Pick the pair of seeds farthest apart (quadratic in fan-out only).
        best = (0, 1)
        best_d = -1.0
        for i in range(len(reps)):
            for j in range(i + 1, len(reps)):
                d = sum((a - b) ** 2 for a, b in zip(reps[i], reps[j]))
                if d > best_d:
                    best_d = d
                    best = (i, j)
        seed_a, seed_b = reps[best[0]], reps[best[1]]

        group_a: List[Tuple[object, Point]] = []
        group_b: List[Tuple[object, Point]] = []
        for entry, rep in zip(entries, reps):
            da = sum((a - b) ** 2 for a, b in zip(rep, seed_a))
            db = sum((a - b) ** 2 for a, b in zip(rep, seed_b))
            (group_a if da <= db else group_b).append((entry[0], rep))
        if not group_a or not group_b:  # degenerate (all identical): halve
            merged = group_a or group_b
            group_a = merged[: len(merged) // 2]
            group_b = merged[len(merged) // 2 :]

        sibling = _RNode(self.dim, leaf=node.is_leaf())
        if node.is_leaf():
            assert node.bucket is not None
            old_bucket = node.bucket
            node.bucket = {}
            sibling.bucket = {}
            for pid, _ in group_a:
                assert isinstance(pid, int)
                node.bucket[pid] = old_bucket[pid]
            for pid, _ in group_b:
                assert isinstance(pid, int)
                sibling.bucket[pid] = old_bucket[pid]
                self._leaf_of[pid] = sibling
        else:
            node.children = [child for child, _ in group_a]  # type: ignore[misc]
            sibling.children = [child for child, _ in group_b]  # type: ignore[misc]
            for child in node.children:
                child.parent = node
            for child in sibling.children:
                child.parent = sibling
        node.recompute_mbr()
        sibling.recompute_mbr()

        parent = node.parent
        if parent is None:
            new_root = _RNode(self.dim, leaf=False)
            assert new_root.children is not None
            new_root.children = [node, sibling]
            node.parent = new_root
            sibling.parent = new_root
            new_root.recompute_mbr()
            self._root = new_root
        else:
            assert parent.children is not None
            parent.children.append(sibling)
            sibling.parent = parent
            parent._expand_node(sibling)
            if len(parent.children) > _MAX_ENTRIES:
                self._split(parent)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def ball_ids(self, q: Sequence[float], sq_radius: float) -> List[int]:
        """Ids of all points within ``sqrt(sq_radius)`` of ``q`` (exact)."""
        result: List[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.min_sq_dist(q) > sq_radius:
                continue
            if node.is_leaf():
                assert node.bucket is not None
                for pid, p in node.bucket.items():
                    total = 0.0
                    for a, b in zip(p, q):
                        diff = a - b
                        total += diff * diff
                    if total <= sq_radius:
                        result.append(pid)
            else:
                assert node.children is not None
                stack.extend(node.children)
        return result

    def ball_count(self, q: Sequence[float], sq_radius: float) -> int:
        """Number of points within ``sqrt(sq_radius)`` of ``q`` (exact)."""
        return len(self.ball_ids(q, sq_radius))
