"""Geometric substrates: distances, kd-trees, emptiness queries, range
counting, and an R-tree for the IncDBSCAN baseline.

All structures in this package operate on points represented as tuples of
floats and use *squared* Euclidean distances internally to avoid square
roots in hot loops.
"""

from repro.geometry.points import (
    Box,
    box_inside_ball,
    box_max_sq_dist,
    box_min_sq_dist,
    box_of_points,
    dist,
    sq_dist,
)
from repro.geometry.kdtree import DynamicKDTree
from repro.geometry.emptiness import EmptinessStructure
from repro.geometry.range_count import ApproximateRangeCounter
from repro.geometry.rtree import RTree

__all__ = [
    "Box",
    "box_inside_ball",
    "box_max_sq_dist",
    "box_min_sq_dist",
    "box_of_points",
    "dist",
    "sq_dist",
    "DynamicKDTree",
    "EmptinessStructure",
    "ApproximateRangeCounter",
    "RTree",
]
