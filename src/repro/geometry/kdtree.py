"""A dynamic kd-tree with bucket leaves and periodic rebuilding.

This is the workhorse behind the per-cell emptiness structures (Section 4.2
of the paper) and the approximate range counter (Section 7.3).  The paper
plugs in the structures of Arya et al. and Mount & Park; we substitute a
kd-tree whose query procedures honour exactly the same *approximate
contracts*, which is all the grid-graph framework requires (see DESIGN.md).

Key operations:

* ``insert(pid, point)`` / ``delete(pid)`` — O(log n) expected amortized,
  with full rebuilds once enough deletions have accumulated.
* ``find_within(q, sq_eps, sq_relaxed)`` — returns the id of *some* point at
  squared distance <= ``sq_relaxed`` whenever a point at squared distance
  <= ``sq_eps`` exists; may return ``None`` otherwise.  Subtrees whose
  bounding box is farther than ``sq_eps`` are pruned, and the search stops
  at the first point within ``sq_relaxed`` — this is what makes the
  (1+rho)-slack genuinely cheaper than an exact search.
* ``find_within_many(qs, sq_eps, sq_relaxed)`` — the batched form: one
  traversal carries all still-unresolved queries down the tree, with box
  pruning and leaf distance tests vectorized over the query set.  Pruning
  and acceptance use the same thresholds as the scalar search, so for every
  query the *is-there-a-proof* answer is identical to ``find_within`` (only
  the choice of proof id may differ).
* ``count_fuzzy(q, sq_eps, sq_relaxed, stop_at)`` — returns ``k`` with
  ``|B(q, eps)| <= k <= |B(q, (1+rho)eps)|``; whole subtrees inside the
  relaxed ball are counted without descending.
* ``ball_ids(q, sq_radius)`` — exact enumeration, used by tests and the
  static baselines.

Points are stored in leaf buckets; an id -> leaf map makes deletion O(1) to
locate.  Bounding boxes only ever grow between rebuilds (they stay valid
supersets), and a rebuild re-tightens everything.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro import kernels
from repro.geometry.points import Point

_LEAF_CAP = 8

#: Below this subtree size the bulk loader delegates to the plain
#: list-based builder (numpy per-node overhead dominates small arrays).
_BULK_CUTOFF = 512


def batched_find_within(
    tree: "DynamicKDTree", qs: np.ndarray, sq_eps: float, sq_relaxed: float
) -> List[Optional[int]]:
    """The one batched approximate-emptiness traversal (shared).

    Both ``find_within_many`` surfaces (:class:`DynamicKDTree` and the
    write-behind :class:`DeferredKDTree`) resolve through this single
    traversal: one pass carries every still-unresolved query down the
    tree, box lower bounds of all active queries come from the
    ``box_sq_dists`` kernel and queries farther than ``sq_eps`` drop out
    (the scalar pruning rule); at each leaf the ``find_within_many``
    kernel resolves every active query with a bucket point within
    ``sq_relaxed``.  The same thresholds as the scalar search mean the
    has-proof answer matches :meth:`DynamicKDTree.find_within` exactly.
    """
    n = len(qs)
    out: List[Optional[int]] = [None] * n
    if n == 0 or not tree._points:
        return out
    resolved = np.zeros(n, dtype=bool)
    stack: List[Tuple[_Node, np.ndarray]] = [(tree._root, np.arange(n))]
    while stack:
        node, active = stack.pop()
        active = active[~resolved[active]]
        if node.size == 0 or len(active) == 0:
            continue
        q = qs[active]
        lo = np.asarray(node.lo)
        hi = np.asarray(node.hi)
        active = active[kernels.box_sq_dists(q, lo, hi) <= sq_eps]
        if len(active) == 0:
            continue
        if node.is_leaf():
            assert node.bucket is not None
            if not node.bucket:
                continue
            pids = list(node.bucket.keys())
            pts = np.array(list(node.bucket.values()), dtype=float)
            proofs = kernels.find_within_many(qs[active], pids, pts, sq_relaxed)
            for row, proof in enumerate(proofs):
                if proof is not None:
                    gi = int(active[row])
                    out[gi] = proof
                    resolved[gi] = True
        else:
            assert node.left is not None and node.right is not None
            stack.append((node.left, active))
            stack.append((node.right, active))
    return out


class _Node:
    __slots__ = ("lo", "hi", "size", "parent", "dim", "val", "left", "right", "bucket")

    def __init__(self, dim_count: int) -> None:
        self.lo: List[float] = [float("inf")] * dim_count
        self.hi: List[float] = [float("-inf")] * dim_count
        self.size = 0
        self.parent: Optional[_Node] = None
        # Internal-node fields (None for leaves):
        self.dim: int = -1
        self.val: float = 0.0
        self.left: Optional[_Node] = None
        self.right: Optional[_Node] = None
        # Leaf field (None for internal nodes):
        self.bucket: Optional[Dict[int, Point]] = {}

    def is_leaf(self) -> bool:
        return self.bucket is not None

    def min_sq_dist(self, q: Sequence[float]) -> float:
        total = 0.0
        lo = self.lo
        hi = self.hi
        for i, x in enumerate(q):
            if x < lo[i]:
                diff = lo[i] - x
            elif x > hi[i]:
                diff = x - hi[i]
            else:
                continue
            total += diff * diff
        return total

    def max_sq_dist(self, q: Sequence[float]) -> float:
        total = 0.0
        lo = self.lo
        hi = self.hi
        for i, x in enumerate(q):
            diff = x - lo[i]
            diff2 = hi[i] - x
            if diff2 > diff:
                diff = diff2
            total += diff * diff
        return total


class DynamicKDTree:
    """Dynamic kd-tree over ``(id, point)`` pairs in fixed dimension."""

    def __init__(self, dim: int) -> None:
        if dim < 1:
            raise ValueError(f"dimension must be >= 1, got {dim}")
        self.dim = dim
        self._root = _Node(dim)
        self._leaf_of: Dict[int, _Node] = {}
        self._points: Dict[int, Point] = {}
        self._deletes_since_build = 0

    def __len__(self) -> int:
        return len(self._points)

    def __contains__(self, pid: int) -> bool:
        return pid in self._points

    def point(self, pid: int) -> Point:
        """Coordinates of a stored point."""
        return self._points[pid]

    def ids(self) -> Iterator[int]:
        """Iterate over all stored point ids."""
        return iter(self._points)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def insert(self, pid: int, point: Point) -> None:
        """Add a point under a fresh id (must not already be present)."""
        if pid in self._points:
            raise KeyError(f"point id {pid} already present")
        self._points[pid] = point
        node = self._root
        while True:
            node.size += 1
            lo = node.lo
            hi = node.hi
            for i, x in enumerate(point):
                if x < lo[i]:
                    lo[i] = x
                if x > hi[i]:
                    hi[i] = x
            if node.is_leaf():
                break
            node = node.left if point[node.dim] < node.val else node.right
        assert node.bucket is not None
        node.bucket[pid] = point
        self._leaf_of[pid] = node
        if len(node.bucket) > _LEAF_CAP:
            self._split_leaf(node)

    def insert_many(self, items: Sequence[Tuple[int, Point]]) -> None:
        """Add a batch of ``(id, point)`` pairs (ids must be fresh).

        When the batch is at least as large as the current tree, the new
        points are merged in via one balanced rebuild — O(n log n) total
        instead of n incremental descents — which is what makes bulk
        promotion in the clusterers' ``insert_many`` cheap.  Smaller
        batches fall back to incremental insertion.
        """
        items = list(items)
        if len({pid for pid, _ in items}) != len(items):
            raise KeyError("duplicate point ids in batch")
        for pid, _ in items:
            if pid in self._points:
                raise KeyError(f"point id {pid} already present")
        if len(items) >= max(1, len(self._points)):
            for pid, point in items:
                self._points[pid] = point
            self._deletes_since_build = 0
            self._leaf_of = {}
            ids = np.fromiter(self._points.keys(), dtype=np.int64)
            coords = np.array(list(self._points.values()), dtype=float)
            self._root = self._build_bulk(ids, coords)
        else:
            for pid, point in items:
                self.insert(pid, point)

    def delete(self, pid: int) -> None:
        """Remove a point by id (must be present)."""
        leaf = self._leaf_of.pop(pid)
        assert leaf.bucket is not None
        del leaf.bucket[pid]
        del self._points[pid]
        node: Optional[_Node] = leaf
        while node is not None:
            node.size -= 1
            node = node.parent
        self._deletes_since_build += 1
        if self._deletes_since_build > max(16, len(self._points)):
            self.rebuild()

    def rebuild(self) -> None:
        """Rebuild a balanced tree over the live points (tightens boxes)."""
        items = list(self._points.items())
        self._deletes_since_build = 0
        self._leaf_of = {}
        self._root = self._build(items)

    def _build(self, items: List[Tuple[int, Point]]) -> _Node:
        node = _Node(self.dim)
        node.size = len(items)
        if items:
            lo = node.lo
            hi = node.hi
            for _, p in items:
                for i, x in enumerate(p):
                    if x < lo[i]:
                        lo[i] = x
                    if x > hi[i]:
                        hi[i] = x
        if len(items) <= _LEAF_CAP:
            node.bucket = dict(items)
            for pid, _ in items:
                self._leaf_of[pid] = node
            return node
        node.bucket = None
        dim = max(range(self.dim), key=lambda i: node.hi[i] - node.lo[i])
        items.sort(key=lambda kv: kv[1][dim])
        mid = len(items) // 2
        node.dim = dim
        node.val = items[mid][1][dim]
        # Guard against all-equal coordinates along the split dimension: move
        # the boundary to the first strictly-greater element if possible.
        if items[0][1][dim] == node.val:
            while mid < len(items) and items[mid][1][dim] == node.val:
                mid += 1
            if mid == len(items):  # every coordinate equal: keep as leaf
                node.dim = -1
                node.bucket = dict(items)
                for pid, _ in items:
                    self._leaf_of[pid] = node
                return node
            node.val = items[mid][1][dim]
        node.left = self._build(items[:mid])
        node.right = self._build(items[mid:])
        node.left.parent = node
        node.right.parent = node
        return node

    def _build_bulk(self, ids: np.ndarray, coords: np.ndarray) -> _Node:
        """Balanced build over numpy arrays — the bulk-load fast path.

        Same splitting policy as :meth:`_build` (median on the widest
        dimension, boundary moved past runs of equal coordinates) but
        with vectorized column sorts instead of per-item Python
        comparisons.  Only the tree *shape* depends on the code path; all
        query contracts are structure-independent.
        """
        n = len(ids)
        if n <= _BULK_CUTOFF:
            # Below this size the per-node numpy overhead (argsort and
            # fancy indexing on tiny arrays) loses to the plain builder.
            return self._build(
                [
                    (int(pid), tuple(pt))
                    for pid, pt in zip(ids.tolist(), coords.tolist())
                ]
            )
        node = _Node(self.dim)
        node.size = n
        node.lo = coords.min(axis=0).tolist()
        node.hi = coords.max(axis=0).tolist()
        dim = max(range(self.dim), key=lambda i: node.hi[i] - node.lo[i])
        order = np.argsort(coords[:, dim], kind="stable")
        sorted_col = coords[order, dim]
        mid = n // 2
        val = float(sorted_col[mid])
        if float(sorted_col[0]) == val:
            mid = int(np.searchsorted(sorted_col, val, side="right"))
            if mid == n:  # every coordinate equal: keep as leaf
                node.bucket = {
                    int(pid): tuple(pt)
                    for pid, pt in zip(ids.tolist(), coords.tolist())
                }
                for pid in node.bucket:
                    self._leaf_of[pid] = node
                return node
            val = float(sorted_col[mid])
        node.bucket = None
        node.dim = dim
        node.val = val
        node.left = self._build_bulk(ids[order[:mid]], coords[order[:mid]])
        node.right = self._build_bulk(ids[order[mid:]], coords[order[mid:]])
        node.left.parent = node
        node.right.parent = node
        return node

    def _split_leaf(self, leaf: _Node) -> None:
        assert leaf.bucket is not None
        items = list(leaf.bucket.items())
        dim = max(range(self.dim), key=lambda i: leaf.hi[i] - leaf.lo[i])
        items.sort(key=lambda kv: kv[1][dim])
        mid = len(items) // 2
        val = items[mid][1][dim]
        if items[0][1][dim] == val:
            while mid < len(items) and items[mid][1][dim] == val:
                mid += 1
            if mid == len(items):
                return  # all points identical on the widest dimension
            val = items[mid][1][dim]
        leaf.bucket = None
        leaf.dim = dim
        leaf.val = val
        left = _Node(self.dim)
        right = _Node(self.dim)
        left.parent = leaf
        right.parent = leaf
        leaf.left = left
        leaf.right = right
        for pid, p in items:
            child = left if p[dim] < val else right
            assert child.bucket is not None
            child.bucket[pid] = p
            child.size += 1
            for i, x in enumerate(p):
                if x < child.lo[i]:
                    child.lo[i] = x
                if x > child.hi[i]:
                    child.hi[i] = x
            self._leaf_of[pid] = child

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def find_within(
        self, q: Sequence[float], sq_eps: float, sq_relaxed: float
    ) -> Optional[int]:
        """Approximate emptiness search (see module docstring for contract)."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.size == 0 or node.min_sq_dist(q) > sq_eps:
                continue
            if node.is_leaf():
                assert node.bucket is not None
                for pid, p in node.bucket.items():
                    total = 0.0
                    for a, b in zip(p, q):
                        diff = a - b
                        total += diff * diff
                    if total <= sq_relaxed:
                        return pid
            else:
                assert node.left is not None and node.right is not None
                stack.append(node.left)
                stack.append(node.right)
        return None

    def find_within_many(
        self, qs: np.ndarray, sq_eps: float, sq_relaxed: float
    ) -> List[Optional[int]]:
        """Batched approximate emptiness search over an ``(n, dim)`` array.

        Resolves through the shared :func:`batched_find_within`
        traversal (kernel-backed box pruning and leaf proof search);
        the has-proof answer matches ``find_within`` exactly.
        """
        return batched_find_within(self, qs, sq_eps, sq_relaxed)

    def count_fuzzy(
        self,
        q: Sequence[float],
        sq_eps: float,
        sq_relaxed: float,
        stop_at: Optional[int] = None,
    ) -> int:
        """Approximate ball count (see module docstring for contract).

        If ``stop_at`` is given, the count may stop early once it reaches
        that value (useful for core-status tests against ``MinPts``).
        """
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.size == 0 or node.min_sq_dist(q) > sq_eps:
                continue
            if node.max_sq_dist(q) <= sq_relaxed:
                count += node.size
            elif node.is_leaf():
                assert node.bucket is not None
                for p in node.bucket.values():
                    total = 0.0
                    for a, b in zip(p, q):
                        diff = a - b
                        total += diff * diff
                    if total <= sq_eps:
                        count += 1
            else:
                assert node.left is not None and node.right is not None
                stack.append(node.left)
                stack.append(node.right)
            if stop_at is not None and count >= stop_at:
                return count
        return count

    def ball_ids(self, q: Sequence[float], sq_radius: float) -> List[int]:
        """Exact: ids of all points within ``sqrt(sq_radius)`` of ``q``."""
        result: List[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.size == 0 or node.min_sq_dist(q) > sq_radius:
                continue
            if node.is_leaf():
                assert node.bucket is not None
                for pid, p in node.bucket.items():
                    total = 0.0
                    for a, b in zip(p, q):
                        diff = a - b
                        total += diff * diff
                    if total <= sq_radius:
                        result.append(pid)
            else:
                assert node.left is not None and node.right is not None
                stack.append(node.left)
                stack.append(node.right)
        return result


class DeferredKDTree:
    """A :class:`DynamicKDTree` with write-behind bulk insertion.

    ``insert_many`` only buffers its items; the first operation that
    needs the index folds the whole buffer in via one balanced bulk
    build.  A buffered point that is deleted before any query never
    touches the tree at all, which is what keeps ingest-then-evict
    batches index-free.  Point-at-a-time ``insert`` stays eager, so
    sequential update paths behave exactly as before.  Shared base of
    the per-cell emptiness structure and approximate range counter.
    """

    def __init__(self, dim: int) -> None:
        self._tree = DynamicKDTree(dim)
        self._pending: Dict[int, Point] = {}

    @property
    def dim(self) -> int:
        return self._tree.dim

    def _flush(self) -> None:
        if self._pending:
            pending, self._pending = self._pending, {}
            self._tree.insert_many(list(pending.items()))

    def _items_snapshot(self) -> Tuple[List[int], np.ndarray]:
        """All ``(ids, coords)`` — indexed *and* buffered — without flushing.

        Lets matrix-based batched queries answer over small structures
        while the write-behind buffer stays unindexed.
        """
        ids = list(self._tree._points.keys()) + list(self._pending.keys())
        if not ids:
            return ids, np.empty((0, self.dim), dtype=float)
        coords = list(self._tree._points.values()) + list(self._pending.values())
        return ids, np.array(coords, dtype=float)

    def __len__(self) -> int:
        return len(self._tree) + len(self._pending)

    def __contains__(self, pid: int) -> bool:
        return pid in self._pending or pid in self._tree

    def ids(self) -> Iterator[int]:
        self._flush()
        return self._tree.ids()

    def point(self, pid: int) -> Point:
        if pid in self._pending:
            return self._pending[pid]
        return self._tree.point(pid)

    def find_within_many(
        self, qs: np.ndarray, sq_eps: float, sq_relaxed: float
    ) -> List[Optional[int]]:
        """Batched emptiness search (folds the buffer in first).

        Same shared :func:`batched_find_within` traversal as the eager
        tree — the only difference is the up-front buffer fold.
        """
        self._flush()
        return batched_find_within(self._tree, qs, sq_eps, sq_relaxed)

    def insert(self, pid: int, point: Point) -> None:
        self._flush()
        self._tree.insert(pid, point)

    def insert_many(self, items: Sequence[Tuple[int, Point]]) -> None:
        """Buffer a bulk of ``(id, point)`` pairs (indexed on demand)."""
        for pid, point in items:
            if pid in self._pending or pid in self._tree:
                raise KeyError(f"point id {pid} already present")
            self._pending[pid] = point

    def delete(self, pid: int) -> None:
        # A buffered point can leave without ever touching the index.
        if self._pending.pop(pid, None) is not None:
            return
        self._tree.delete(pid)
