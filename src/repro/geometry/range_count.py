"""Approximate range counting (the contract of Section 7.3).

The fully-dynamic algorithm decides the relaxed core status of a point ``q``
by asking for an integer ``k`` with ``|B(q, eps)| <= k <= |B(q, (1+rho)eps)|``
and comparing ``k`` against ``MinPts``.  The paper plugs in the dynamic
structure of Mount & Park; we substitute a kd-tree count with a fuzzy
boundary, which satisfies the same inequality by construction:

* a subtree whose bounding box lies entirely inside ``B(q, (1+rho)eps)`` is
  counted wholesale (may include optional in-between points — fine for the
  upper bound);
* a subtree farther than ``eps`` from ``q`` is skipped (excludes only points
  outside ``B(q, eps)`` — fine for the lower bound);
* individual points are counted iff within ``eps``.

One counter instance covers one grid cell (all its points, core or not);
the clusterer sums counts over the ``(1+rho)eps``-close cells.

Bulk insertions are buffered and folded into the kd-tree on the first
operation that needs the index (:class:`repro.geometry.kdtree.
DeferredKDTree`); the sequential ``insert`` path is unchanged.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro import kernels
from repro.errors import ConfigError
from repro.geometry.kdtree import DeferredKDTree

#: At or below this many stored points (with the write-behind buffer
#: non-empty) ``count`` answers with one exact kernel pass instead of
#: flushing the buffer into the kd-tree — the counting twin of the
#: emptiness structure's matrix path.
_MATRIX_CUTOFF = 128


class ApproximateRangeCounter(DeferredKDTree):
    """Dynamic approximate ball-count over one cell's points."""

    def __init__(self, dim: int, eps: float, rho: float) -> None:
        if eps <= 0:
            raise ConfigError(f"eps must be positive, got {eps}")
        if rho < 0:
            raise ConfigError(f"rho must be non-negative, got {rho}")
        super().__init__(dim)
        self.eps = eps
        self.rho = rho
        self._sq_eps = eps * eps
        relaxed = eps * (1.0 + rho)
        self._sq_relaxed = relaxed * relaxed

    def count(self, q: Sequence[float], stop_at: Optional[int] = None) -> int:
        """Approximate number of stored points in ``B(q, eps)``.

        The result ``k`` satisfies ``|B(q,eps)| <= k <= |B(q,(1+rho)eps)|``
        restricted to this cell's points.  With ``stop_at`` the count may
        saturate early once it reaches that value.

        Small structures with buffered bulk insertions answer with one
        exact ``count_within`` kernel pass at radius ``eps`` — a legal
        instantiation of the contract (``k = |B(q, eps)|``) that never
        forces the write-behind buffer to be indexed; with ``rho = 0``
        it equals the fuzzy tree count exactly.
        """
        if self._pending and len(self) <= _MATRIX_CUTOFF:
            _ids, pts = self._items_snapshot()
            return kernels.count_within(q, pts, self._sq_eps)
        self._flush()
        return self._tree.count_fuzzy(q, self._sq_eps, self._sq_relaxed, stop_at)
