"""Point and box primitives shared by every geometric structure.

A *point* is a tuple of floats.  A *box* is an axis-parallel rectangle given
as a pair ``(lo, hi)`` of coordinate tuples with ``lo[i] <= hi[i]`` on every
dimension.  All distance helpers work on squared distances; callers compare
against pre-squared thresholds.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Tuple

Point = Tuple[float, ...]
Box = Tuple[Point, Point]


def sq_dist(p: Sequence[float], q: Sequence[float]) -> float:
    """Squared Euclidean distance between two points."""
    total = 0.0
    for a, b in zip(p, q):
        diff = a - b
        total += diff * diff
    return total


def dist(p: Sequence[float], q: Sequence[float]) -> float:
    """Euclidean distance between two points."""
    return math.sqrt(sq_dist(p, q))


def box_of_points(points: Iterable[Sequence[float]]) -> Box:
    """Smallest axis-parallel box enclosing ``points`` (must be non-empty)."""
    it = iter(points)
    try:
        first = next(it)
    except StopIteration:
        raise ValueError("box_of_points requires at least one point") from None
    lo = list(first)
    hi = list(first)
    for p in it:
        for i, x in enumerate(p):
            if x < lo[i]:
                lo[i] = x
            elif x > hi[i]:
                hi[i] = x
    return tuple(lo), tuple(hi)


def box_min_sq_dist(box: Box, q: Sequence[float]) -> float:
    """Squared distance from ``q`` to the nearest point of ``box``.

    Zero when ``q`` lies inside the box.
    """
    lo, hi = box
    total = 0.0
    for i, x in enumerate(q):
        if x < lo[i]:
            diff = lo[i] - x
        elif x > hi[i]:
            diff = x - hi[i]
        else:
            continue
        total += diff * diff
    return total


def box_max_sq_dist(box: Box, q: Sequence[float]) -> float:
    """Squared distance from ``q`` to the farthest point of ``box``."""
    lo, hi = box
    total = 0.0
    for i, x in enumerate(q):
        diff = max(x - lo[i], hi[i] - x)
        total += diff * diff
    return total


def box_inside_ball(box: Box, q: Sequence[float], sq_radius: float) -> bool:
    """Whether every point of ``box`` is within ``sqrt(sq_radius)`` of ``q``."""
    return box_max_sq_dist(box, q) <= sq_radius


def boxes_min_sq_dist(a: Box, b: Box) -> float:
    """Squared distance between the closest points of two boxes."""
    alo, ahi = a
    blo, bhi = b
    total = 0.0
    for i in range(len(alo)):
        if ahi[i] < blo[i]:
            diff = blo[i] - ahi[i]
        elif bhi[i] < alo[i]:
            diff = alo[i] - bhi[i]
        else:
            continue
        total += diff * diff
    return total
