"""Setup shim: enables legacy editable installs in offline environments
that lack the ``wheel`` package (``pip install -e . --no-use-pep517``).
All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
