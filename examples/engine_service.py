#!/usr/bin/env python
"""Serving pattern: buffered ingest sessions with query barriers.

A long-lived service rarely sees one update at a time — ingest arrives
in bursts, queries arrive whenever.  This example drives the paper's
fully-dynamic clusterer the way a service would, through
:mod:`repro.api`:

* an :class:`~repro.api.IngestSession` buffers a point stream and
  flushes through the vectorized bulk paths only when the buffer fills
  (pure-ingest phases never pay per-point costs or index builds);
* a query mid-stream is a *barrier*: the session flushes first, so the
  answer reflects every update issued before it;
* snapshots and stats are epoch-stamped, so downstream consumers can
  attribute every result to a dataset version.

Run: python examples/engine_service.py
"""

import os

import repro.api
from repro.workload.seed_spreader import seed_spreader


def main():
    n = int(os.environ.get("REPRO_BENCH_N", "2000"))
    points = seed_spreader(n, 2, seed=7)

    engine = repro.api.open(
        algorithm="full",
        eps=200.0,
        minpts=10,
        rho=0.001,
        dim=2,
        flush_threshold=512,
    )

    # Phase 1: pure ingest through a buffered session.  Ids are handed
    # out eagerly; the actual bulk flushes happen every 512 points.
    with engine.session() as session:
        pids = []
        for p in points[: n // 2]:
            pids.append(session.ingest(p))
        print(
            f"streamed {len(pids)} points: {session.flush_count} bulk "
            f"flushes, {session.pending_updates} still buffered"
        )

        # Phase 2: a query mid-stream is a barrier — the session
        # flushes before answering, so the outcome sees all n//2 points.
        outcome = session.cgroup_by(pids[:50])
        print(
            f"barrier query @ epoch {outcome.epoch}: "
            f"{len(outcome.groups)} groups, {len(outcome.noise)} noise"
        )

        # Phase 3: keep streaming; the clean `with`-exit flushes the tail.
        for p in points[n // 2:]:
            session.ingest(p)

    stats = engine.stats()
    print(
        f"engine: {stats.points} points in {stats.cells} cells "
        f"@ epoch {stats.epoch} (backend {stats.backend})"
    )

    snap = engine.snapshot()
    print(
        f"snapshot @ epoch {snap.epoch}: {snap.cluster_count} clusters, "
        f"{len(snap.noise)} noise points over {snap.size} points"
    )

    # The dataset is fully dynamic: retire the oldest third in one bulk
    # deletion and re-snapshot.
    engine.delete_many(list(range(n // 3)))
    snap = engine.snapshot()
    print(
        f"after retiring {n // 3} points: {snap.cluster_count} clusters "
        f"@ epoch {snap.epoch} ({snap.size} points live)"
    )


if __name__ == "__main__":
    main()
