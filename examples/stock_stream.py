#!/usr/bin/env python
"""The paper's motivating scenario: clustering live stock profiles.

Section 1 motivates C-group-by queries with questions like "are stocks X
and Y in the same cluster?" and "break these 10 stocks by the clusters
their profiles belong to" — without paying for a full re-clustering.

We simulate a market of stocks whose 3-dimensional profiles (normalized
volatility, momentum, volume) drift over time.  Each tick re-inserts the
moved stocks (delete old profile, insert new one) and then answers analyst
queries over a watchlist — exactly the insert/delete/C-group-by mix the
fully-dynamic algorithm is designed for.

Run: python examples/stock_stream.py
"""

import random

from repro import double_approx

SECTORS = {
    "tech": (8.0, 7.0, 6.0),
    "utility": (2.0, 2.0, 3.0),
    "energy": (5.0, 2.5, 8.0),
    "meme": (9.5, 9.5, 9.5),
}
STOCKS_PER_SECTOR = 30
TICKS = 25
WATCHLIST_SIZE = 10


def main():
    rng = random.Random(7)
    algo = double_approx(eps=1.2, minpts=5, rho=0.001, dim=3)

    tickers = {}
    profiles = {}
    for sector, center in SECTORS.items():
        for i in range(STOCKS_PER_SECTOR):
            ticker = f"{sector[:3].upper()}{i:02d}"
            profile = tuple(c + rng.gauss(0, 0.5) for c in center)
            profiles[ticker] = profile
            tickers[ticker] = algo.insert(profile)

    watchlist = rng.sample(sorted(tickers), WATCHLIST_SIZE)
    print(f"Tracking {len(tickers)} stocks; watchlist: {', '.join(watchlist)}\n")

    for tick in range(1, TICKS + 1):
        # A subset of stocks drifts; meme stocks drift hardest.
        movers = rng.sample(sorted(tickers), 12)
        for ticker in movers:
            algo.delete(tickers[ticker])
            scale = 0.8 if ticker.startswith("MEM") else 0.25
            profile = tuple(
                min(10.0, max(0.0, x + rng.gauss(0, scale)))
                for x in profiles[ticker]
            )
            profiles[ticker] = profile
            tickers[ticker] = algo.insert(profile)

        if tick % 5 == 0:
            result = algo.cgroup_by([tickers[t] for t in watchlist])
            back = {pid: t for t, pid in tickers.items()}
            groups = [
                "{" + ", ".join(sorted(back[p] for p in g)) + "}"
                for g in result.groups
            ]
            drifters = sorted(back[p] for p in result.noise)
            print(f"tick {tick:2d}: watchlist clusters: {'  '.join(groups)}")
            if drifters:
                print(f"         drifted out of all clusters: {', '.join(drifters)}")

    a, b = watchlist[0], watchlist[1]
    same = algo.same_cluster(tickers[a], tickers[b])
    print(f"\nAre {a} and {b} in the same cluster now? {'yes' if same else 'no'}")
    full = algo.clusters()
    print(f"Market structure: {full.cluster_count} clusters, "
          f"{len(full.noise)} unclustered stocks")


if __name__ == "__main__":
    main()
