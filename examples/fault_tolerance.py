#!/usr/bin/env python
"""Fault tolerance: a sharded deployment surviving worker crashes.

The process-executor sharded engine runs one worker process per shard.
Workers can die (OOM killer, segfaults) or hang (deadlocks); the
supervision layer turns both into bounded, exact recovery:

* every reply wait carries a deadline (``shard_call_timeout``), so a
  hung worker raises :class:`repro.ShardTimeoutError` instead of
  hanging the caller;
* every state-mutating call that succeeds is journaled per shard, and
  a dead or hung worker is respawned and rebuilt by replaying its
  journal — at ``rho = 0`` the recovered deployment is bit-identical
  to an engine that never failed;
* restarts are budgeted (``shard_max_restarts``) and counted in
  ``stats().restarts``, so a run that survived failures says so.

This example injects a real worker crash (``os._exit`` mid-call) with
a :mod:`repro.shard.faults` plan — the same declarative schedule the
chaos suite uses — and checks the recovered clustering against an
unsharded reference.  The ``REPRO_FAULT_PLAN`` environment variable
overrides the plan, which is how the CI chaos leg drives this script.

Run: python examples/fault_tolerance.py
"""

import os

import repro.api
from repro.workload.seed_spreader import seed_spreader


def _canon(snapshot):
    return [sorted(map(sorted, snapshot.clusters)), sorted(snapshot.noise)]


def main():
    n = int(os.environ.get("REPRO_BENCH_N", "2000"))
    points = seed_spreader(n, 2, seed=7)
    plan = os.environ.get("REPRO_FAULT_PLAN", "crash:ingest:2:shard=0")
    chunk = max(1, n // 3)

    knobs = dict(algorithm="full", eps=200.0, minpts=10, rho=0.0, dim=2)
    reference = repro.api.open(**knobs)
    engine = repro.api.open(
        **knobs,
        shards=2,
        shard_executor="process",
        shard_fault_plan=None if "REPRO_FAULT_PLAN" in os.environ else plan,
        shard_call_timeout=30.0,
        shard_max_restarts=3,
    )
    print(f"fault plan: {plan!r} (workers will really die)")

    ref_ids, ids = [], []
    for lo in range(0, n, chunk):
        batch = points[lo : lo + chunk]
        ref_ids.extend(reference.ingest(batch))
        ids.extend(engine.ingest(batch))  # a crash lands mid-stream here
    reference.delete_many(ref_ids[: n // 10])
    engine.delete_many(ids[: n // 10])

    stats = engine.stats()
    print(
        f"ingested {len(engine)} points across {stats.shards} shards; "
        f"supervised worker restarts: {stats.restarts}"
    )
    if plan.startswith("crash") or plan.startswith("hang"):
        assert stats.restarts >= 1, "the injected failure never fired"

    same = _canon(engine.snapshot().clustering) == _canon(
        reference.snapshot().clustering
    )
    print(
        f"recovered clustering vs never-failed reference at rho=0: "
        f"{'bit-identical' if same else 'DIVERGED'}"
    )
    assert same, "journal replay must rebuild shard state exactly"

    reference.close()
    engine.close()
    print("OK: worker death was an implementation detail, not an outage")


if __name__ == "__main__":
    main()
