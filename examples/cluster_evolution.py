#!/usr/bin/env python
"""Tracking cluster evolution events through a dynamic workload.

Combines the fully-dynamic clusterer with :class:`repro.analysis.
ClusterTracker`: a seed-spreader stream is inserted while old points decay
away, and every structural change in the clustering — clusters appearing,
growing, merging, splitting, vanishing — is reported as it happens.  This
is the event-level view of the paper's Figure 1.

Run: python examples/cluster_evolution.py
"""

import random

from repro import double_approx, seed_spreader
from repro.analysis import ClusterTracker, cluster_stats

BATCH = 40
BATCHES = 25
DECAY = 0.15  # fraction of live points deleted per batch


def main():
    rng = random.Random(99)
    points = seed_spreader(BATCH * BATCHES, dim=2, seed=7)
    algo = double_approx(eps=200.0, minpts=10, rho=0.001, dim=2)
    tracker = ClusterTracker()
    live = []

    print(f"streaming {len(points)} points in {BATCHES} batches, "
          f"{DECAY:.0%} decay per batch\n")
    cursor = 0
    for batch in range(BATCHES):
        for _ in range(BATCH):
            live.append(algo.insert(points[cursor]))
            cursor += 1
        for _ in range(int(len(live) * DECAY)):
            algo.delete(live.pop(rng.randrange(len(live))))

        events = tracker.observe(algo.clusters())
        interesting = [e for e in events if e.kind in ("merge", "split",
                                                       "appear", "vanish")]
        if interesting:
            stats = cluster_stats(algo.clusters())
            summary = ", ".join(str(e) for e in interesting)
            print(f"batch {batch:2d} [{len(live):4d} live, "
                  f"{stats.cluster_count} clusters]: {summary}")

    final = cluster_stats(algo.clusters())
    print(f"\nfinal: {final.cluster_count} clusters, sizes {final.sizes[:8]}"
          f"{'...' if len(final.sizes) > 8 else ''}, "
          f"{final.noise_count} noise points")


if __name__ == "__main__":
    main()
