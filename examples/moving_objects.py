#!/usr/bin/env python
"""Sliding-window clustering of moving objects (fully-dynamic workload).

A fleet of vehicles reports GPS positions; we keep only the last W reports
in a sliding window.  Every new report is an insertion and every expired
report a deletion — the fully-dynamic scheme with a perfectly balanced
insert/delete mix, where IncDBSCAN's BFS-on-delete hurts most and the
paper's Double-Approx shines.

The script tracks two convoys that approach, merge into one traffic
cluster, then separate again — watch the cluster count flip 2 -> 1 -> 2.

Run: python examples/moving_objects.py
"""

import math
import random

from repro.analysis import SlidingWindowClusterer

VEHICLES_PER_CONVOY = 25
WINDOW = 150  # reports kept in the window
STEPS = 60


def convoy_position(t, phase):
    """Two convoys oscillating towards/away from each other."""
    gap = 6.0 + 4.0 * math.cos(t / 9.0)
    return (t * 0.5, phase * gap / 2.0)


def main():
    rng = random.Random(13)
    window = SlidingWindowClusterer(WINDOW, eps=1.5, minpts=4, rho=0.001, dim=2)

    print(f"{2 * VEHICLES_PER_CONVOY} vehicles, window of {WINDOW} reports\n")
    merged_spans = []
    state = None
    for t in range(STEPS):
        for phase in (-1, +1):
            cx, cy = convoy_position(t, phase)
            for _ in range(VEHICLES_PER_CONVOY // 5):
                window.append((cx + rng.gauss(0, 0.6), cy + rng.gauss(0, 0.6)))

        clusters = window.clusters()
        big = sum(1 for c in clusters.clusters if len(c) >= 10)
        new_state = "merged" if big <= 1 else "separate"
        if new_state != state:
            state = new_state
            merged_spans.append((t, state))
            print(
                f"t={t:2d}: convoys {state:8s} "
                f"({clusters.cluster_count} clusters, "
                f"{len(clusters.noise)} stragglers, "
                f"{len(window)} reports in window)"
            )

    print("\nstate transitions:", " -> ".join(f"{s}@{t}" for t, s in merged_spans))
    assert any(s == "merged" for _, s in merged_spans), "convoys never merged"
    assert any(s == "separate" for _, s in merged_spans), "convoys never separated"
    print("The window clustering tracked merge and split events dynamically.")


if __name__ == "__main__":
    main()
