#!/usr/bin/env python
"""Quickstart: dynamic density-based clustering through `repro.api`.

Demonstrates the service facade — the library's preferred entry point —
on a tiny 2D dataset:

* opening an :class:`~repro.api.Engine` from typed config knobs,
* ingesting points and asking C-group-by queries (epoch-stamped),
* watching a deletion split a cluster (the paper's Figure 1 in reverse).

The pre-engine API (``double_approx(...)`` and friends) still works —
see the README migration table — but new code should start here.

Run: python examples/quickstart.py
"""

import repro.api


def describe(outcome, names):
    parts = []
    for group in outcome.groups:
        parts.append("{" + ", ".join(sorted(names[p] for p in group)) + "}")
    if outcome.noise:
        parts.append("noise: {" + ", ".join(sorted(names[p] for p in outcome.noise)) + "}")
    return "  ".join(parts)


def main():
    # One validated config: the fully-dynamic algorithm at the paper's
    # default approximation (rho=0 would be exact DBSCAN).
    engine = repro.api.open(
        algorithm="full", eps=1.0, minpts=3, rho=0.001, dim=2
    )

    # Two blobs connected by a thin bridge.
    left_blob = [(0.0, 0.0), (0.4, 0.2), (0.2, 0.5), (0.5, 0.5)]
    right_blob = [(4.0, 0.0), (4.4, 0.2), (4.2, 0.5), (4.5, 0.5)]
    bridge = [(1.2, 0.2), (2.0, 0.2), (2.8, 0.2), (3.4, 0.2)]
    outlier = (10.0, 10.0)

    names = {}
    ids = {}
    for label, pts in (("L", left_blob), ("R", right_blob), ("B", bridge)):
        for i, pid in enumerate(engine.ingest(pts)):
            names[pid] = f"{label}{i}"
            ids[f"{label}{i}"] = pid
    pid = engine.insert(outlier)
    names[pid] = "outlier"
    ids["outlier"] = pid

    stats = engine.stats()
    print(
        f"{stats.points} points ingested, {stats.cells} non-empty grid "
        f"cells, epoch {stats.epoch}, backend {stats.backend}"
    )

    query = [ids["L0"], ids["R0"], ids["B1"], ids["outlier"]]
    print("\nC-group-by over {L0, R0, B1, outlier} with the bridge present:")
    print(" ", describe(engine.cgroup_by(query), names))

    print("\nDeleting the bridge points...")
    engine.delete_many([ids[f"B{i}"] for i in range(len(bridge))])

    print("Same query after the deletion (the cluster split in two):")
    print(" ", describe(
        engine.cgroup_by([ids["L0"], ids["R0"], ids["outlier"]]), names
    ))

    snap = engine.snapshot()
    print(f"\nFull clustering @ epoch {snap.epoch}: {snap.cluster_count} "
          f"clusters, {len(snap.noise)} noise points")


if __name__ == "__main__":
    main()
