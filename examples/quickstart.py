#!/usr/bin/env python
"""Quickstart: dynamic density-based clustering with C-group-by queries.

Demonstrates the core API of the library on a tiny 2D dataset:

* inserting points into the fully-dynamic clusterer,
* asking C-group-by queries over a handful of points,
* watching a deletion split a cluster (the paper's Figure 1 in reverse).

Run: python examples/quickstart.py
"""

from repro import double_approx


def describe(result, names):
    parts = []
    for group in result.groups:
        parts.append("{" + ", ".join(sorted(names[p] for p in group)) + "}")
    if result.noise:
        parts.append("noise: {" + ", ".join(sorted(names[p] for p in result.noise)) + "}")
    return "  ".join(parts)


def main():
    # Exact DBSCAN (rho=0 would be exact; 0.001 is the paper's default).
    algo = double_approx(eps=1.0, minpts=3, rho=0.001, dim=2)

    # Two blobs connected by a thin bridge.
    left_blob = [(0.0, 0.0), (0.4, 0.2), (0.2, 0.5), (0.5, 0.5)]
    right_blob = [(4.0, 0.0), (4.4, 0.2), (4.2, 0.5), (4.5, 0.5)]
    bridge = [(1.2, 0.2), (2.0, 0.2), (2.8, 0.2), (3.4, 0.2)]
    outlier = (10.0, 10.0)

    names = {}
    ids = {}
    for label, pts in (("L", left_blob), ("R", right_blob), ("B", bridge)):
        for i, p in enumerate(pts):
            pid = algo.insert(p)
            names[pid] = f"{label}{i}"
            ids[f"{label}{i}"] = pid
    pid = algo.insert(outlier)
    names[pid] = "outlier"
    ids["outlier"] = pid

    print(f"{len(algo)} points inserted, {algo.cell_count} non-empty grid cells")

    query = [ids["L0"], ids["R0"], ids["B1"], ids["outlier"]]
    print("\nC-group-by over {L0, R0, B1, outlier} with the bridge present:")
    print(" ", describe(algo.cgroup_by(query), names))

    print("\nDeleting the bridge points...")
    for i in range(len(bridge)):
        algo.delete(ids[f"B{i}"])

    print("Same query after the deletion (the cluster split in two):")
    print(" ", describe(algo.cgroup_by([ids["L0"], ids["R0"], ids["outlier"]]), names))

    full = algo.clusters()
    print(f"\nFull clustering: {full.cluster_count} clusters, "
          f"{len(full.noise)} noise points")


if __name__ == "__main__":
    main()
