#!/usr/bin/env python
"""The streaming cluster-analytics service, end to end in one process.

Starts a :class:`repro.service.ClusterService` on an ephemeral
localhost port — the same server ``python -m repro serve`` runs — and
drives it with two concurrent :class:`repro.service.ServiceClient`
sessions plus one windowed run:

* **session multiplexing** — both clients ingest through their own
  buffered sessions onto one engine; a query from either acts as a
  barrier and observes every acked update, stamped with the epoch;
* **backpressure** — a deliberately tiny per-session queue sheds a
  burst with 429-style rejections instead of buffering without bound;
* **sliding-window mode** — a second, windowed deployment expires the
  oldest points on every append (time-decay clustering).

Run: python examples/streaming_service.py
"""

import asyncio
import os

import repro.api
from repro.service import (
    ClusterService,
    ServiceClient,
    ServiceError,
    ServiceLimits,
)
from repro.service import protocol
from repro.workload.seed_spreader import burst_arrival_stream


def open_engine():
    return repro.api.open(
        algorithm="full", eps=200.0, minpts=10, rho=0.001, dim=2
    )


async def mixed_service_demo(n):
    """Two concurrent sessions, query barriers, a shed burst, a drain."""
    engine = open_engine()
    service = ClusterService(
        engine, limits=ServiceLimits(queue_depth=8, max_sessions=8)
    )
    await service.start("127.0.0.1", 0)
    host, port = service.address
    print(f"service listening on {host}:{port}")

    batches = burst_arrival_stream(n, 2, seed=7)
    alice = await ServiceClient.connect(host, port)
    bob = await ServiceClient.connect(host, port)

    # Interleaved ingest: the service hands the active-writer token
    # back and forth, flushing the previous writer on every handover.
    owned = {"alice": [], "bob": []}
    for i, batch in enumerate(batches):
        who, client = (
            ("alice", alice) if i % 2 == 0 else ("bob", bob)
        )
        acked = await client.ingest([list(p) for p in batch])
        owned[who].extend(acked["pids"])
    print(
        f"ingested {len(owned['alice'])} points as alice, "
        f"{len(owned['bob'])} as bob across {len(batches)} bursty ticks"
    )

    # A query from bob is a barrier: it sees alice's acked points too.
    outcome = await bob.cgroup_by(owned["alice"][:8] + owned["bob"][:8])
    print(
        f"cross-session C-group-by at epoch {outcome['epoch']}: "
        f"{len(outcome['groups'])} groups, {len(outcome['noise'])} noise"
    )
    snapshot = await alice.snapshot()
    assert snapshot["size"] == len(owned["alice"]) + len(owned["bob"])
    print(
        f"snapshot at epoch {snapshot['epoch']}: "
        f"{len(snapshot['clusters'])} clusters over {snapshot['size']} points"
    )

    # Backpressure: fire a pipelined burst far deeper than the queue.
    futures = [alice.submit("ping", payload=i) for i in range(64)]
    results = await asyncio.gather(*futures, return_exceptions=True)
    shed = sum(
        1
        for r in results
        if isinstance(r, ServiceError) and r.code == protocol.BACKPRESSURE
    )
    print(
        f"pipelined burst of {len(futures)} pings: "
        f"{len(futures) - shed} served, {shed} shed with 429 backpressure"
    )

    # Graceful drain: every acked op reaches the engine before close.
    await service.aclose()
    stats = service.stats
    print(
        f"drained {stats.drained_sessions} sessions "
        f"({stats.failed_drains} failed), engine holds {len(engine)} points"
    )
    await alice.aclose()
    await bob.aclose()
    engine.close()


async def windowed_service_demo(n):
    """Sliding-window mode: append-only traffic with oldest-out expiry."""
    engine = open_engine()
    capacity = max(1, n // 4)
    service = ClusterService(engine, window_capacity=capacity)
    await service.start("127.0.0.1", 0)
    client = await ServiceClient.connect(*service.address)

    expired_total = 0
    for batch in burst_arrival_stream(n, 2, seed=11):
        appended = await client.window_append([list(p) for p in batch])
        expired_total += len(appended["expired"])
    stats = await client.stats()
    print(
        f"windowed run (capacity {capacity}): window holds "
        f"{stats['window_size']} points, {expired_total} expired, "
        f"epoch {stats['epoch']}"
    )

    await client.aclose()
    await service.aclose()
    engine.close()


def main():
    n = min(int(os.environ.get("REPRO_BENCH_N", "2000")), 2000)
    asyncio.run(mixed_service_demo(n))
    asyncio.run(windowed_service_demo(n))
    print("OK")


if __name__ == "__main__":
    main()
