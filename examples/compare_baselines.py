#!/usr/bin/env python
"""Head-to-head: Double-Approx vs IncDBSCAN on one mixed workload.

A miniature version of the paper's Section 8.3 experiment: the same
fully-dynamic workload (5/6 insertions, 1/6 deletions, periodic C-group-by
queries) fed to both algorithms, reporting the paper's three metrics —
average operation cost, maximum update cost, and query cost.

Run: python examples/compare_baselines.py            (quick)
     REPRO_BENCH_N=5000 python examples/compare_baselines.py  (longer)
"""

import statistics

from repro import IncDBSCAN, double_approx, generate_workload, run_workload
from repro.workload.config import MINPTS, RHO, bench_n, eps_for

DIM = 2
N = bench_n(1500)


def report(name, result):
    queries = result.query_costs()
    print(
        f"  {name:14s} avg {result.average_cost:9.1f} us/op   "
        f"max-update {result.max_update_cost:10.1f} us   "
        f"avg-query {statistics.mean(queries) if queries else 0.0:8.1f} us"
    )
    return result.average_cost


def main():
    eps = eps_for(DIM)
    print(
        f"workload: N={N} updates (5/6 inserts), d={DIM}, eps={eps:.0f}, "
        f"MinPts={MINPTS}, rho={RHO}, query every {max(1, N // 20)} updates\n"
    )
    workload = generate_workload(
        N, DIM, insert_fraction=5 / 6, query_frequency=max(1, N // 20), seed=42
    )

    ours = double_approx(eps, MINPTS, rho=RHO, dim=DIM)
    ours_cost = report("Double-Approx", run_workload(ours, workload))

    inc = IncDBSCAN(eps, MINPTS, dim=DIM)
    inc_cost = report("IncDBSCAN", run_workload(inc, workload))

    print(
        f"\nDouble-Approx is {inc_cost / ours_cost:.1f}x faster on average "
        f"(the paper reports up to two orders of magnitude at N = 10M —\n"
        f"the gap widens with N because IncDBSCAN's range queries and\n"
        f"deletion BFS grow with the dataset while ours stay near-constant)."
    )
    print(
        f"\nfinal state: ours={len(ours)} points / "
        f"{ours.clusters().cluster_count} clusters; "
        f"IncDBSCAN ran {inc.range_queries} range queries."
    )


if __name__ == "__main__":
    main()
