#!/usr/bin/env python
"""The hardness construction of Section 6, run forwards.

Theorem 2 says fully-dynamic rho-approximate DBSCAN cannot have both fast
updates and fast queries, because it would solve USEC-LS (Lemma 2) and
hence USEC (Lemma 1) too fast.  This demo *executes* that reduction chain:

    USEC instance
      -> divide and conquer (Lemma 1)
        -> USEC-LS sub-instances
          -> dynamic clustering probes (Lemma 2): insert blue + dummy,
             ask a |Q| = 2 C-group-by query, delete both

and checks the answers against brute force.  The point: our fully-dynamic
clusterer is a *correct* USEC solver — which is exactly why it cannot be
uniformly fast for rho-approximate semantics, and why the paper introduces
the double approximation.

Run: python examples/hardness_demo.py
"""

from repro.hardness import (
    random_usec_instance,
    usec_brute,
    usec_via_ls_oracle,
)
from repro.hardness.reduction import (
    make_reduction_clusterer,
    solve_usec_ls_with_clusterer,
)


def clustering_oracle(red, blue):
    """A USEC-LS oracle backed entirely by dynamic clustering."""
    return solve_usec_ls_with_clusterer(red, blue, make_reduction_clusterer)


def main():
    print("Solving USEC through dynamic clustering (Lemma 1 + Lemma 2)\n")
    agree = 0
    for seed in range(10):
        inst = random_usec_instance(
            n_red=12, n_blue=12, dim=2, extent=5.0, seed=seed
        )
        want = usec_brute(inst.red, inst.blue)
        got = usec_via_ls_oracle(inst.red, inst.blue, clustering_oracle)
        status = "OK " if got == want else "FAIL"
        agree += got == want
        print(
            f"  instance {seed}: {inst.size} points -> "
            f"clustering says {'yes' if got else 'no ':3s} "
            f"brute force says {'yes' if want else 'no ':3s}  [{status}]"
        )
    print(f"\n{agree}/10 instances agree with brute force.")
    print(
        "\nEvery 'probe' in the reduction is one insertion pair, one |Q|=2\n"
        "C-group-by query, and one deletion pair — so a clusterer with\n"
        "o(n^1/3) updates AND queries would give an o(n^4/3) USEC solver,\n"
        "contradicting the believed USEC lower bound (Theorem 2)."
    )


if __name__ == "__main__":
    main()
